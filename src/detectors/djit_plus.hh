/**
 * @file
 * DJIT+ vector-clock race detector (Pozniansky & Schuster, PPoPP'03).
 *
 * Where the baseline HappensBeforeDetector keeps only the *last* write
 * as a scalar epoch (clearing read history on every store), DJIT+
 * keeps a full write vector clock and a full read vector clock per
 * granule: component u holds the clock of thread u's most recent
 * write (resp. read) to the granule. A read races with any unordered
 * prior write; a write races with any unordered prior write or read.
 *
 * Keeping the whole vectors makes DJIT+ strictly more complete per
 * dynamic access than the epoch representation: every race the epoch
 * detector reports is also a DJIT+ race (the last write is one of the
 * writes in the vector, and read clocks are never clobbered), which
 * the differential battery checks as hb-subset-of-djit. Against an
 * oracle carrying the same full vectors, detection is exact
 * (djit-matches-oracle).
 *
 * Storage is unbounded with 4-byte granules by default — this is a
 * software reference detector, not a hardware model.
 */

#ifndef HARD_DETECTORS_DJIT_PLUS_HH
#define HARD_DETECTORS_DJIT_PLUS_HH

#include <array>
#include <unordered_map>

#include "detectors/report.hh"
#include "detectors/vclock.hh"

namespace hard
{

/** Full-vector DJIT+ happens-before detector. */
class DjitPlusDetector : public RaceDetector
{
  public:
    /**
     * @param name Detector name for reporting.
     * @param granularity_bytes Shadow granularity (4..32).
     */
    DjitPlusDetector(const std::string &name,
                     unsigned granularity_bytes = 4);

    void onRead(const MemEvent &ev) override;
    void onWrite(const MemEvent &ev) override;
    void onLockAcquire(const SyncEvent &ev) override;
    void onLockRelease(const SyncEvent &ev) override;
    void onBarrier(const BarrierEvent &ev) override;
    void onSemaPost(const SyncEvent &ev) override;
    void onSemaWait(const SyncEvent &ev) override;
    void onRwLockAcquire(const SyncEvent &ev, bool writer) override;
    void onRwLockRelease(const SyncEvent &ev, bool writer) override;
    void onCondSignal(const SyncEvent &ev) override;
    void onCondBroadcast(const SyncEvent &ev) override;
    void onCondWait(const SyncEvent &ev) override;
    void onAtomicStore(const SyncEvent &ev) override;
    void onAtomicLoad(const SyncEvent &ev) override;

    /**
     * @return races whose unordered prior write was *not* the latest
     * write to the granule — exactly the reports an epoch-based
     * (last-write-only) detector can miss.
     */
    std::uint64_t nonLatestWriteRaces() const { return nonLatest_; }

    /** @return granules with shadow state allocated. */
    std::size_t granulesTracked() const { return shadow_.size(); }

  private:
    /** Shadow state of one granule: full write and read vectors. */
    struct Shadow
    {
        /** writeClk[u] = clock of thread u's latest write. */
        VClock writeClk;
        /** readClk[u] = clock of thread u's latest read. */
        VClock readClk;
        /** Thread of the most recent write (for nonLatest_ stats). */
        ThreadId lastWriter = invalidThread;
    };

    void access(const MemEvent &ev, bool write);

    /** Per-rwlock release clocks (see HappensBeforeDetector::RwVc). */
    struct RwVc
    {
        VClock writeVc;
        VClock readVc;
    };

    unsigned gran_;
    std::unordered_map<Addr, Shadow> shadow_;
    std::array<VClock, kMaxThreads> threadVc_{};
    std::unordered_map<LockAddr, VClock> lockVc_;
    std::unordered_map<Addr, VClock> semaVc_;
    std::unordered_map<LockAddr, RwVc> rwVc_;
    std::unordered_map<Addr, VClock> condVc_;
    std::unordered_map<Addr, VClock> atomVc_;
    std::uint64_t nonLatest_ = 0;
};

} // namespace hard

#endif // HARD_DETECTORS_DJIT_PLUS_HH
