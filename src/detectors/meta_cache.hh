/**
 * @file
 * Cache-geometry-limited metadata storage.
 *
 * HARD keeps candidate sets/LStates in cache lines and loses them when
 * a line is displaced from the L2 (paper §3.6 "Cache Displacement");
 * the happens-before comparison stores its timestamps the same way. We
 * model that lifetime with a set-associative metadata store that
 * mirrors the configured L2 geometry. The "ideal" detector variants
 * use the same store in unbounded mode (infinite L2, paper §4).
 */

#ifndef HARD_DETECTORS_META_CACHE_HH
#define HARD_DETECTORS_META_CACHE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "mem/cache_cfg.hh"

namespace hard
{

/**
 * Set-associative (or unbounded) store of per-line detector metadata.
 *
 * @tparam LineData Metadata attached to one cache line. Must be
 * default-constructible; a default-constructed LineData is the "fresh"
 * state a line has after being (re)fetched with no surviving metadata.
 */
template <typename LineData>
class MetaCache
{
  public:
    /**
     * @param geom Geometry to mirror (typically the simulated L2).
     * @param unbounded If true, never evict (the paper's "ideal"
     * infinite-L2 configuration); @p geom then only defines lineBytes.
     */
    MetaCache(const CacheConfig &geom, bool unbounded)
        : geom_(geom), unbounded_(unbounded)
    {
        geom_.validate("metaCache");
        if (!unbounded_)
            ways_.resize(geom_.numSets() * geom_.assoc);
    }

    /**
     * Find the metadata line for @p addr, creating it if absent.
     *
     * @param addr Any byte address within the line.
     * @param[out] fresh Set true if the line had to be (re)created,
     * i.e. any previous metadata for it has been lost.
     * @param[out] evicted If non-null, set to the line address whose
     * metadata this lookup displaced (invalidAddr when nothing was).
     */
    LineData &
    lookup(Addr addr, bool &fresh, Addr *evicted = nullptr)
    {
        if (evicted != nullptr)
            *evicted = invalidAddr;
        const Addr line = geom_.lineAddr(addr);
        ++lookups_;
        if (unbounded_) {
            auto [it, inserted] = map_.try_emplace(line);
            fresh = inserted;
            if (!inserted)
                ++hits_;
            return it->second;
        }

        auto [first, last] = setRange(line);
        for (std::size_t i = first; i < last; ++i) {
            if (ways_[i].valid && ways_[i].lineAddr == line) {
                ways_[i].lastUse = ++useClock_;
                fresh = false;
                ++hits_;
                return ways_[i].data;
            }
        }
        // Miss: fill, evicting LRU if needed.
        std::size_t victim = first;
        for (std::size_t i = first; i < last; ++i) {
            if (!ways_[i].valid) {
                victim = i;
                break;
            }
            if (ways_[i].lastUse < ways_[victim].lastUse)
                victim = i;
        }
        if (ways_[victim].valid) {
            ++evictions_;
            if (evicted != nullptr)
                *evicted = ways_[victim].lineAddr;
        }
        ways_[victim].valid = true;
        ways_[victim].lineAddr = line;
        ways_[victim].lastUse = ++useClock_;
        ways_[victim].data = LineData{};
        fresh = true;
        return ways_[victim].data;
    }

    /** @return the metadata line for @p addr if resident, else null. */
    LineData *
    find(Addr addr)
    {
        const Addr line = geom_.lineAddr(addr);
        if (unbounded_) {
            auto it = map_.find(line);
            return it == map_.end() ? nullptr : &it->second;
        }
        auto [first, last] = setRange(line);
        for (std::size_t i = first; i < last; ++i)
            if (ways_[i].valid && ways_[i].lineAddr == line)
                return &ways_[i].data;
        return nullptr;
    }

    /**
     * Drop the metadata line containing @p addr, if resident (used by
     * cache-coupled storage when the simulated L2 evicts the line).
     * @return true if a line was dropped.
     */
    bool
    erase(Addr addr)
    {
        const Addr line = geom_.lineAddr(addr);
        if (unbounded_) {
            if (map_.erase(line) == 0)
                return false;
            ++evictions_;
            return true;
        }
        auto [first, last] = setRange(line);
        for (std::size_t i = first; i < last; ++i) {
            if (ways_[i].valid && ways_[i].lineAddr == line) {
                ways_[i].valid = false;
                ++evictions_;
                return true;
            }
        }
        return false;
    }

    /** Apply @p fn to every resident line (barrier flash operations). */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        if (unbounded_) {
            for (auto &kv : map_)
                fn(kv.first, kv.second);
            return;
        }
        for (auto &w : ways_)
            if (w.valid)
                fn(w.lineAddr, w.data);
    }

    /** @return number of lines displaced (metadata lost) so far. */
    std::uint64_t evictions() const { return evictions_; }

    /** @return lookup() calls so far. */
    std::uint64_t lookups() const { return lookups_; }

    /** @return lookup() calls that found the line resident. */
    std::uint64_t hits() const { return hits_; }

    /** @return number of currently resident metadata lines. */
    std::size_t
    residentLines() const
    {
        if (unbounded_)
            return map_.size();
        std::size_t n = 0;
        for (const auto &w : ways_)
            if (w.valid)
                ++n;
        return n;
    }

    const CacheConfig &geometry() const { return geom_; }
    bool unbounded() const { return unbounded_; }

  private:
    struct Way
    {
        Addr lineAddr = invalidAddr;
        std::uint64_t lastUse = 0;
        bool valid = false;
        LineData data{};
    };

    std::pair<std::size_t, std::size_t>
    setRange(Addr line) const
    {
        std::size_t first = geom_.setIndex(line) * geom_.assoc;
        return {first, first + geom_.assoc};
    }

    CacheConfig geom_;
    bool unbounded_;
    std::vector<Way> ways_;
    std::unordered_map<Addr, LineData> map_;
    std::uint64_t useClock_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
};

} // namespace hard

#endif // HARD_DETECTORS_META_CACHE_HH
