/**
 * @file
 * The "ideal" lockset implementation of paper §4: candidate sets kept
 * per 4-byte variable, for *all* variables (unbounded storage), with a
 * complete (exact) set representation instead of Bloom filters — i.e.
 * an Eraser-style software implementation used as the upper bound on
 * HARD's detection capability.
 */

#ifndef HARD_DETECTORS_IDEAL_LOCKSET_HH
#define HARD_DETECTORS_IDEAL_LOCKSET_HH

#include <array>
#include <map>
#include <set>
#include <unordered_map>

#include "detectors/lockset_state.hh"
#include "detectors/report.hh"

namespace hard
{

class ProvRecorder;

/** Configuration of the ideal lockset detector. */
struct IdealLocksetConfig
{
    /** Candidate-set granularity in bytes (paper's ideal: 4). */
    unsigned granularityBytes = 4;
    /** Apply the §3.5 barrier flash-reset of candidate sets. */
    bool barrierReset = true;
    /**
     * Tolerate unbalanced lock events (re-acquire keeps the lock held,
     * release-of-unheld is a no-op) instead of panicking. Needed when
     * replaying minimizer-reduced fuzz traces, whose event streams are
     * not guaranteed lock-balanced; live runs keep the strict checks.
     */
    bool tolerateUnbalanced = false;
};

/**
 * An exact candidate set: either the universe of all locks (the
 * initial value) or an explicit finite set.
 */
class ExactLockset
{
  public:
    /** Start as the universe ("all possible locks"). */
    ExactLockset() = default;

    /** Reset to the universe (barrier pruning, §3.5). */
    void
    resetToUniverse()
    {
        universe_ = true;
        set_.clear();
    }

    /** Intersect with the exact thread lock set @p held. */
    void
    intersect(const std::set<LockAddr> &held)
    {
        if (universe_) {
            universe_ = false;
            set_ = held;
            return;
        }
        for (auto it = set_.begin(); it != set_.end();) {
            if (held.count(*it) == 0)
                it = set_.erase(it);
            else
                ++it;
        }
    }

    bool isUniverse() const { return universe_; }
    bool
    empty() const
    {
        return !universe_ && set_.empty();
    }
    const std::set<LockAddr> &locks() const { return set_; }

  private:
    bool universe_ = true;
    std::set<LockAddr> set_;
};

/** Eraser-style exact lockset detector, unbounded and fine-grained. */
class IdealLocksetDetector : public RaceDetector
{
  public:
    IdealLocksetDetector(const std::string &name,
                         const IdealLocksetConfig &cfg);

    void onRead(const MemEvent &ev) override;
    void onWrite(const MemEvent &ev) override;
    void onLockAcquire(const SyncEvent &ev) override;
    void onLockRelease(const SyncEvent &ev) override;
    void onBarrier(const BarrierEvent &ev) override;

    /**
     * Rwlock-aware lockset maintenance: a writer hold protects like a
     * mutex; a reader hold protects reads only (concurrent readers
     * are admitted, so a write under a reader hold is unprotected).
     * Accesses intersect with ThreadLocksets::effective(write).
     */
    void onRwLockAcquire(const SyncEvent &ev, bool writer) override;
    void onRwLockRelease(const SyncEvent &ev, bool writer) override;

    /** @return the current exact write-held lock set of @p tid
     * (mutexes + writer-mode rwlock holds). */
    const std::set<LockAddr> &lockset(ThreadId tid) const;

    /** @return the current reader-mode rwlock hold set of @p tid. */
    const std::set<LockAddr> &readLockset(ThreadId tid) const;

    /**
     * Measured set-size statistics, supporting the paper's §5.2.3
     * claim that candidate/lock sets are tiny in real programs (max 1
     * for its applications, 3 for radix) — the justification for the
     * 16-bit BFVector.
     */
    struct SetSizeStats
    {
        /** Largest finite candidate set observed at an update. */
        std::size_t maxCandidate = 0;
        /** Largest thread lock set observed at an acquire. */
        std::size_t maxLockset = 0;
        /** Histogram of finite candidate-set sizes 0..7 (7 = >=7). */
        std::array<std::uint64_t, 8> candidateHist{};
    };

    const SetSizeStats &setSizeStats() const { return sizeStats_; }

    const IdealLocksetConfig &config() const { return cfg_; }

    /**
     * Attach a provenance recorder (explain/prov.hh): exact candidate
     * intersections, reports and flash-resets are logged, and reports
     * carry the last conflicting accessor in RaceReport::other. Null
     * (default) keeps every hook a single pointer test.
     */
    void attachProvenance(ProvRecorder *prov) { prov_ = prov; }

  private:
    /** Shadow record of one granule. */
    struct Granule
    {
        LState state = LState::Virgin;
        ThreadId owner = invalidThread;
        ExactLockset candidate;
    };

    void access(const MemEvent &ev, bool write);

    IdealLocksetConfig cfg_;
    std::unordered_map<Addr, Granule> shadow_;
    /** Per-thread write-held/read-held lock sets. */
    std::unordered_map<ThreadId, ThreadLocksets> held_;
    SetSizeStats sizeStats_;
    /** Provenance recorder; null unless an explain run attached one. */
    ProvRecorder *prov_ = nullptr;
};

} // namespace hard

#endif // HARD_DETECTORS_IDEAL_LOCKSET_HH
