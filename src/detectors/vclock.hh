/**
 * @file
 * Fixed-width vector clocks for the happens-before detector.
 */

#ifndef HARD_DETECTORS_VCLOCK_HH
#define HARD_DETECTORS_VCLOCK_HH

#include <algorithm>
#include <array>
#include <cstdint>

#include "common/types.hh"

namespace hard
{

/** Maximum simultaneously tracked threads (CMP cores are <= 8 here). */
constexpr unsigned kMaxThreads = 8;

/** A vector clock over kMaxThreads components. */
struct VClock
{
    std::array<std::uint32_t, kMaxThreads> c{};

    std::uint32_t operator[](ThreadId t) const { return c[t]; }
    std::uint32_t &operator[](ThreadId t) { return c[t]; }

    /** Component-wise maximum with @p o. */
    void
    join(const VClock &o)
    {
        for (unsigned i = 0; i < kMaxThreads; ++i)
            c[i] = std::max(c[i], o.c[i]);
    }

    bool
    operator==(const VClock &o) const
    {
        return c == o.c;
    }
};

/** A scalar epoch: clock value @p clk of thread @p tid. */
struct Epoch
{
    ThreadId tid = invalidThread;
    std::uint32_t clk = 0;

    /** @return true if this epoch happens-before (or equals) @p vc. */
    bool
    ordered(const VClock &vc) const
    {
        return tid == invalidThread || clk <= vc[tid];
    }
};

} // namespace hard

#endif // HARD_DETECTORS_VCLOCK_HH
