#include "detectors/ideal_lockset.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "explain/prov.hh"

namespace hard
{

IdealLocksetDetector::IdealLocksetDetector(const std::string &name,
                                           const IdealLocksetConfig &cfg)
    : RaceDetector(name), cfg_(cfg)
{
    hard_fatal_if(cfg_.granularityBytes == 0 ||
                      !isPowerOf2(cfg_.granularityBytes),
                  "ideal-lockset: bad granularity %u",
                  cfg_.granularityBytes);
}

const std::set<LockAddr> &
IdealLocksetDetector::lockset(ThreadId tid) const
{
    static const std::set<LockAddr> empty;
    auto it = held_.find(tid);
    return it == held_.end() ? empty : it->second.writeHeld;
}

const std::set<LockAddr> &
IdealLocksetDetector::readLockset(ThreadId tid) const
{
    static const std::set<LockAddr> empty;
    auto it = held_.find(tid);
    return it == held_.end() ? empty : it->second.readHeld;
}

void
IdealLocksetDetector::access(const MemEvent &ev, bool write)
{
    const unsigned gran = cfg_.granularityBytes;
    const Addr lo = alignDown(ev.addr, gran);
    const Addr hi = ev.addr + (ev.size ? ev.size : 1);
    const std::set<LockAddr> locks = held_[ev.tid].effective(write);

    for (Addr a = lo; a < hi; a += gran) {
        Granule &g = shadow_[a];
        if (prov_)
            prov_->noteAccess(a, ev.tid, ev.at);
        const LState state_before = g.state;
        LStateStep step = lstateAccess(g.state, g.owner, ev.tid, write);
        g.state = step.next;
        g.owner = step.owner;
        if (step.updateCandidate) {
            g.candidate.intersect(locks);
            if (!g.candidate.isUniverse()) {
                std::size_t sz = g.candidate.locks().size();
                sizeStats_.maxCandidate =
                    std::max(sizeStats_.maxCandidate, sz);
                ++sizeStats_.candidateHist[std::min<std::size_t>(sz, 7)];
            }
            if (prov_)
                prov_->recordExactNarrow(
                    a, ev.tid, ev.site, write, ev.at, state_before,
                    g.state, locks, g.candidate.isUniverse(),
                    static_cast<unsigned>(g.candidate.locks().size()));
        }
        if (step.reportIfEmpty && g.candidate.empty()) {
            emit(ev.tid, a, gran, ev.site, write, ev.at,
                 prov_ ? prov_->lastOther(a) : invalidThread);
            if (prov_)
                prov_->recordReport(a, ev.tid, ev.site, write, ev.at);
        }
    }
}

void
IdealLocksetDetector::onRead(const MemEvent &ev)
{
    access(ev, false);
}

void
IdealLocksetDetector::onWrite(const MemEvent &ev)
{
    access(ev, true);
}

void
IdealLocksetDetector::onLockAcquire(const SyncEvent &ev)
{
    ThreadLocksets &ls = held_[ev.tid];
    auto [it, inserted] = ls.writeHeld.insert(ev.lock);
    (void)it;
    hard_panic_if(!inserted && !cfg_.tolerateUnbalanced,
                  "ideal-lockset: thread %u re-acquired lock %llx",
                  ev.tid, static_cast<unsigned long long>(ev.lock));
    sizeStats_.maxLockset =
        std::max(sizeStats_.maxLockset,
                 ls.writeHeld.size() + ls.readHeld.size());
}

void
IdealLocksetDetector::onLockRelease(const SyncEvent &ev)
{
    std::size_t erased = held_[ev.tid].writeHeld.erase(ev.lock);
    hard_panic_if(erased == 0 && !cfg_.tolerateUnbalanced,
                  "ideal-lockset: thread %u released unheld lock %llx",
                  ev.tid, static_cast<unsigned long long>(ev.lock));
}

void
IdealLocksetDetector::onRwLockAcquire(const SyncEvent &ev, bool writer)
{
    ThreadLocksets &ls = held_[ev.tid];
    auto [it, inserted] =
        (writer ? ls.writeHeld : ls.readHeld).insert(ev.lock);
    (void)it;
    hard_panic_if(!inserted && !cfg_.tolerateUnbalanced,
                  "ideal-lockset: thread %u re-acquired rwlock %llx",
                  ev.tid, static_cast<unsigned long long>(ev.lock));
    sizeStats_.maxLockset =
        std::max(sizeStats_.maxLockset,
                 ls.writeHeld.size() + ls.readHeld.size());
}

void
IdealLocksetDetector::onRwLockRelease(const SyncEvent &ev, bool writer)
{
    ThreadLocksets &ls = held_[ev.tid];
    std::size_t erased =
        (writer ? ls.writeHeld : ls.readHeld).erase(ev.lock);
    hard_panic_if(erased == 0 && !cfg_.tolerateUnbalanced,
                  "ideal-lockset: thread %u released unheld rwlock %llx",
                  ev.tid, static_cast<unsigned long long>(ev.lock));
}

void
IdealLocksetDetector::onBarrier(const BarrierEvent &ev)
{
    if (!cfg_.barrierReset)
        return;
    if (prov_)
        prov_->recordFlashReset(ev.at, ev.episode);
    // §3.5: discard pre-barrier evidence — accesses on either side of
    // the barrier are ordered, so neither their lock sets nor their
    // sharing history may be held against post-barrier accesses (see
    // HardDetector::onBarrier for the Figure 7 rationale).
    for (auto &kv : shadow_) {
        kv.second.candidate.resetToUniverse();
        kv.second.state = LState::Virgin;
        kv.second.owner = invalidThread;
    }
}

} // namespace hard
