/**
 * @file
 * RaceTrack-style adaptive lockset + happens-before hybrid detector
 * (after Yu, Rodeheffer & Chen, SOSP'05), with reader/writer-aware
 * lock sets.
 *
 * Like the ideal lockset detector it runs the Eraser state machine
 * (Figure 2) over exact per-granule candidate sets, intersecting with
 * ThreadLocksets::effective(write) so reader-mode rwlock holds protect
 * reads but not writes. Unlike plain lockset, every empty-candidate
 * alarm is then re-checked against a *full* happens-before relation —
 * one that includes lock release->acquire edges as well as barriers,
 * semaphores, rwlocks, condvars and atomics. If every other thread's
 * last access to the granule is HB-ordered before the current one,
 * the alarm is suppressed as a synchronized hand-off; only genuinely
 * concurrent unprotected sharing is reported.
 *
 * Because the lockset side is identical to IdealLocksetDetector
 * (same granularity, same state machine, same effective-set
 * intersection) and suppression only ever removes reports, the
 * battery invariant racetrack-subset-of-ideal holds structurally.
 *
 * This differs from HARD's HybridDetector, whose prune clock carries
 * only *non-lock* edges (it must not launder the very lock discipline
 * the lockset checks) and whose candidate sets are Bloom vectors.
 * RaceTrack accepts the laundering on purpose: its adaptive design
 * trades Eraser's discipline checking for fewer false alarms.
 */

#ifndef HARD_DETECTORS_RACETRACK_HH
#define HARD_DETECTORS_RACETRACK_HH

#include <array>
#include <set>
#include <unordered_map>

#include "detectors/ideal_lockset.hh"
#include "detectors/lockset_state.hh"
#include "detectors/report.hh"
#include "detectors/vclock.hh"

namespace hard
{

/** Configuration of the RaceTrack hybrid detector. */
struct RaceTrackConfig
{
    /** Candidate-set granularity in bytes. */
    unsigned granularityBytes = 4;
    /** Apply the §3.5 barrier flash-reset of candidate sets. */
    bool barrierReset = true;
    /**
     * Tolerate unbalanced lock events instead of panicking (needed
     * when replaying minimizer-reduced fuzz traces).
     */
    bool tolerateUnbalanced = false;
};

/** Adaptive lockset/happens-before hybrid with rwlock-aware sets. */
class RaceTrackDetector : public RaceDetector
{
  public:
    RaceTrackDetector(const std::string &name,
                      const RaceTrackConfig &cfg);

    void onRead(const MemEvent &ev) override;
    void onWrite(const MemEvent &ev) override;
    void onLockAcquire(const SyncEvent &ev) override;
    void onLockRelease(const SyncEvent &ev) override;
    void onBarrier(const BarrierEvent &ev) override;
    void onSemaPost(const SyncEvent &ev) override;
    void onSemaWait(const SyncEvent &ev) override;
    void onRwLockAcquire(const SyncEvent &ev, bool writer) override;
    void onRwLockRelease(const SyncEvent &ev, bool writer) override;
    void onCondSignal(const SyncEvent &ev) override;
    void onCondBroadcast(const SyncEvent &ev) override;
    void onCondWait(const SyncEvent &ev) override;
    void onAtomicStore(const SyncEvent &ev) override;
    void onAtomicLoad(const SyncEvent &ev) override;

    /** @return lockset alarms suppressed by the happens-before check. */
    std::uint64_t suppressed() const { return suppressed_; }

    /** @return the current write-held lock set of @p tid. */
    const std::set<LockAddr> &lockset(ThreadId tid) const;

    /** @return the current reader-mode rwlock hold set of @p tid. */
    const std::set<LockAddr> &readLockset(ThreadId tid) const;

    const RaceTrackConfig &config() const { return cfg_; }

  private:
    /** Shadow record of one granule. */
    struct Granule
    {
        LState state = LState::Virgin;
        ThreadId owner = invalidThread;
        ExactLockset candidate;
        /** Clock of each thread's last access (own component). */
        std::array<std::uint32_t, kMaxThreads> accessClk{};
    };

    void access(const MemEvent &ev, bool write);

    /** Per-rwlock release clocks (see HappensBeforeDetector::RwVc). */
    struct RwVc
    {
        VClock writeVc;
        VClock readVc;
    };

    RaceTrackConfig cfg_;
    std::unordered_map<Addr, Granule> shadow_;
    /** Per-thread write-held/read-held lock sets. */
    std::unordered_map<ThreadId, ThreadLocksets> held_;
    /** Full happens-before clocks: every sync edge, locks included. */
    std::array<VClock, kMaxThreads> threadVc_{};
    std::unordered_map<LockAddr, VClock> lockVc_;
    std::unordered_map<Addr, VClock> semaVc_;
    std::unordered_map<LockAddr, RwVc> rwVc_;
    std::unordered_map<Addr, VClock> condVc_;
    std::unordered_map<Addr, VClock> atomVc_;
    std::uint64_t suppressed_ = 0;
};

} // namespace hard

#endif // HARD_DETECTORS_RACETRACK_HH
