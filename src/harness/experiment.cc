#include "harness/experiment.hh"

#include <memory>

#include "common/logging.hh"
#include "harness/batch.hh"
#include "harness/run_pool.hh"

namespace hard
{

SimConfig
defaultSimConfig()
{
    // Table 1 of the paper.
    return SimConfig{};
}

const char *
execModeName(ExecMode mode)
{
    return mode == ExecMode::Fast ? "fast" : "cycle";
}

ExecMode
parseExecMode(const std::string &name)
{
    if (name == "cycle")
        return ExecMode::Cycle;
    if (name == "fast")
        return ExecMode::Fast;
    throw ConfigError(
        errfmt("unknown execution mode '%s' (cycle|fast)", name.c_str()));
}

RunResult
runWithDetectors(const Program &prog, const SimConfig &sim,
                 const std::vector<RaceDetector *> &detectors)
{
    return runWithDetectors(prog, sim, detectors, nullptr);
}

RunResult
runWithDetectors(const Program &prog, const SimConfig &sim,
                 const std::vector<RaceDetector *> &detectors,
                 Json *stats_out)
{
    return runWithDetectors(prog, sim, detectors, stats_out, {});
}

RunResult
runWithDetectors(const Program &prog, const SimConfig &sim,
                 const std::vector<RaceDetector *> &detectors,
                 Json *stats_out,
                 const std::vector<AccessObserver *> &extra)
{
    System system(sim, prog);
    // Sampling applies to detectors only; extra observers (recorders,
    // exposure probes, provenance) always see the full stream.
    std::vector<std::unique_ptr<SamplingObserver>> sampled;
    for (RaceDetector *d : detectors) {
        if (sim.sampling.active()) {
            sampled.push_back(
                std::make_unique<SamplingObserver>(*d, sim.sampling));
            system.addObserver(sampled.back().get());
        } else {
            system.addObserver(d);
        }
    }
    for (AccessObserver *o : extra)
        system.addObserver(o);
    RunResult res = system.run();
    for (RaceDetector *d : detectors)
        d->finalize();
    if (stats_out != nullptr)
        *stats_out = system.statsJson();
    return res;
}

std::set<SiteId>
sitesTouching(const Program &prog, const Injection &inj)
{
    std::set<SiteId> sites;
    for (const auto &thread : prog.threads) {
        for (const Op &op : thread.ops) {
            if (op.type != OpType::Read && op.type != OpType::Write)
                continue;
            if (inj.overlaps(op.addr, op.size))
                sites.insert(op.site);
        }
    }
    return sites;
}

bool
detectedInjection(const ReportSink &sink, const Injection &inj,
                  const std::set<SiteId> &true_sites)
{
    for (const RaceReport &r : sink.reports()) {
        if (!inj.overlaps(r.addr, r.size))
            continue;
        if (true_sites.empty() || true_sites.count(r.site))
            return true;
    }
    return false;
}

std::int64_t
firstDetectionCycle(const ReportSink &sink, const Injection &inj,
                    const std::set<SiteId> &true_sites)
{
    std::int64_t first = -1;
    for (const RaceReport &r : sink.reports()) {
        if (!inj.overlaps(r.addr, r.size))
            continue;
        if (!true_sites.empty() && true_sites.count(r.site) == 0)
            continue;
        const auto at = static_cast<std::int64_t>(r.at);
        if (first < 0 || at < first)
            first = at;
    }
    return first;
}

EffectivenessResult
runEffectiveness(const std::string &workload, const WorkloadParams &wp,
                 const SimConfig &sim, const DetectorFactory &factory,
                 unsigned num_runs, std::uint64_t seed0)
{
    // The serial path is the parallel path at jobs == 1: the same
    // per-run units executed inline in run-index order (see batch.hh).
    RunPool serial(1);
    return runEffectivenessParallel(workload, wp, sim, factory, num_runs,
                                    seed0, serial);
}

OverheadResult
measureOverhead(const std::string &workload, const WorkloadParams &wp,
                const SimConfig &sim, const HardConfig &hard_cfg,
                bool collect_stats)
{
    OverheadResult out;

    // Baseline: no detector, no HARD timing. As in the batch run
    // units, substitute a finite (but unreachable for healthy runs)
    // cycle budget so one hung measurement cannot stall a sweep.
    {
        Program prog = buildWorkload(workload, wp);
        SimConfig base_cfg = sim;
        base_cfg.hardTiming.enabled = false;
        if (base_cfg.maxCycles == 0)
            base_cfg.maxCycles = defaultCycleBudget(prog);
        System system(base_cfg, prog);
        out.baseCycles = system.run().totalCycles;
        if (collect_stats)
            out.baseStats = system.statsJson();
    }

    // HARD-enabled: charge candidate-set broadcasts to the bus and pay
    // the per-shared-access checking latency. In directory mode the
    // round-trips are charged by the System instead of broadcasts.
    {
        Program prog = buildWorkload(workload, wp);
        SimConfig hard_sim = sim;
        hard_sim.hardTiming.enabled = true;
        // HARD timing dilates runs, so scale the budget with it.
        if (hard_sim.maxCycles == 0)
            hard_sim.maxCycles = 2 * defaultCycleBudget(prog);
        System system(hard_sim, prog);
        HardDetector hard("hard", hard_cfg,
                          hard_sim.hardTiming.directoryMode
                              ? nullptr
                              : &system.memsys().bus());
        // Under a sampling schedule the detector observes (and
        // broadcasts for) only the monitored substream; the System
        // gates its timing charges on the identical decision.
        SamplingObserver sampled(hard, hard_sim.sampling);
        if (hard_sim.sampling.active())
            system.addObserver(&sampled);
        else
            system.addObserver(&hard);
        out.hardCycles = system.run().totalCycles;
        out.metaBroadcasts = hard.hardStats().metaBroadcasts;
        out.dataBytes = system.memsys().bus().stats().value("dataBytes");
        out.metaBytes = system.memsys().bus().stats().value("metaBytes");
        if (collect_stats)
            out.hardStats = system.statsJson();
    }

    out.overheadPct = out.baseCycles == 0
        ? 0.0
        : 100.0 *
            (static_cast<double>(out.hardCycles) -
             static_cast<double>(out.baseCycles)) /
            static_cast<double>(out.baseCycles);
    return out;
}

OverheadResult
measureOverheadDirectory(const std::string &workload,
                         const WorkloadParams &wp, const SimConfig &sim,
                         const HardConfig &hard_cfg, bool collect_stats)
{
    SimConfig dir_sim = sim;
    dir_sim.hardTiming.directoryMode = true;
    return measureOverhead(workload, wp, dir_sim, hard_cfg, collect_stats);
}

DetectorFactory
table2Detectors()
{
    return [] {
        std::vector<std::unique_ptr<RaceDetector>> dets;
        dets.push_back(
            std::make_unique<HardDetector>("hard.default", HardConfig{}));
        dets.push_back(std::make_unique<IdealLocksetDetector>(
            "hard.ideal", IdealLocksetConfig{}));
        dets.push_back(std::make_unique<HappensBeforeDetector>(
            "hb.default", HbConfig{}));
        dets.push_back(std::make_unique<HappensBeforeDetector>(
            "hb.ideal", HbConfig::ideal()));
        return dets;
    };
}

} // namespace hard
