#include "harness/campaign.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <thread>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/error.hh"
#include "common/logging.hh"
#include "telemetry/profile.hh"

namespace hard
{

const char *const kCampaignSchema = "hard.campaign.v1";
const char *const kCampaignStatusSchema = "hard.campaign.status.v1";

namespace
{

constexpr const char *kShardInfix = ".shard-";
constexpr const char *kShardSuffix = ".journal.jsonl";
constexpr const char *kHeartbeatSuffix = ".heartbeat.jsonl";

/** Strip a trailing ".json" (mirrors journalPathFor's convention). */
std::string
outputStem(const std::string &jsonPath)
{
    const std::string suffix = ".json";
    std::string stem = jsonPath;
    if (stem.size() > suffix.size() &&
        stem.compare(stem.size() - suffix.size(), suffix.size(),
                     suffix) == 0)
        stem.resize(stem.size() - suffix.size());
    return stem;
}

std::uint64_t
parseUnsigned(const std::string &text, const char *what,
              const std::string &spec)
{
    try {
        std::size_t used = 0;
        const std::uint64_t v = std::stoull(text, &used);
        hard_throw_if(used != text.size(), ConfigError,
                      "--inject-shard-crash: bad %s in '%s'", what,
                      spec.c_str());
        return v;
    } catch (const SimError &) {
        throw;
    } catch (const std::exception &) {
        throw ConfigError(errfmt("--inject-shard-crash: bad %s in '%s'",
                                 what, spec.c_str()));
    }
}

/** Deterministic per-(unit, attempt) jitter: splitmix64 over the unit
 * identity, the attempt number and the campaign's jitter seed, so
 * retry schedules decorrelate without consulting a clock or global
 * RNG. */
std::uint64_t
jitterHash(const JournalKey &key, unsigned attempts, std::uint64_t seed)
{
    std::uint64_t x = seed ^ (static_cast<std::uint64_t>(key.first) << 32) ^
        (static_cast<std::uint64_t>(key.second) + 0x9E3779B97F4A7C15ull) ^
        (static_cast<std::uint64_t>(attempts) << 17);
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/** Exponential backoff with deterministic jitter for a unit's
 * @p attempts-th crash. */
std::uint64_t
backoffMs(const JournalKey &key, unsigned attempts,
          const CampaignOptions &opts)
{
    const unsigned shift =
        attempts > 1 ? (attempts - 1 > 20 ? 20u : attempts - 1) : 0u;
    std::uint64_t delay = opts.backoffBaseMs << shift;
    if (delay > opts.backoffCapMs || delay < opts.backoffBaseMs)
        delay = opts.backoffCapMs;
    delay += jitterHash(key, attempts, opts.backoffJitterSeed) %
        (delay / 4 + 1);
    return delay;
}

std::uintmax_t
fileSizeOrZero(const std::string &path)
{
    std::error_code ec;
    const std::uintmax_t n = std::filesystem::file_size(path, ec);
    return ec ? 0 : n;
}

/**
 * Load a shard journal, tolerating every way a crashed shard can
 * leave it: missing, empty, or killed before the header line was
 * flushed — all count as "nothing completed". A parseable header with
 * the wrong schema/signature still fails loudly via loadJournal: that
 * is cross-sweep contamination, not crash damage.
 */
JournalEntries
loadShardEntries(const std::string &path, const std::string &signature)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        warn("campaign: shard journal '%s' is missing (shard died "
             "before creating it); treating as empty",
             path.c_str());
        return {};
    }
    std::string first;
    if (!std::getline(in, first) || first.empty()) {
        warn("campaign: shard journal '%s' has no complete header "
             "line (shard died before its first flush); treating as "
             "empty",
             path.c_str());
        return {};
    }
    std::string err;
    const Json header = Json::parse(first, &err);
    if (!err.empty() || !header.isObject() || !header.has("schema")) {
        warn("campaign: shard journal '%s' has a torn header; "
             "treating as empty",
             path.c_str());
        return {};
    }
    in.close();
    return loadJournal(path, signature);
}

/** Atomic publish (temp + rename), so a manifest is either the old
 * complete document or the new complete document — never torn. */
void
writeFileAtomic(const std::string &path, const std::string &text)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        hard_throw_if(!out, ConfigError,
                      "campaign: cannot open '%s' for writing",
                      tmp.c_str());
        out.write(text.data(), static_cast<std::streamsize>(text.size()));
        out.flush();
        hard_throw_if(!out, ConfigError, "campaign: write to '%s' failed",
                      tmp.c_str());
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp);
        throw ConfigError(errfmt("campaign: publish of '%s' failed: %s",
                                 path.c_str(), ec.message().c_str()));
    }
}

/** Per-unit supervision state. */
enum class UnitState
{
    Pending,
    Completed,
    Restored,
    Quarantined,
};

const char *
unitStateName(UnitState s)
{
    switch (s) {
      case UnitState::Pending:
        return "pending";
      case UnitState::Completed:
        return "completed";
      case UnitState::Restored:
        return "restored";
      case UnitState::Quarantined:
        return "quarantined";
    }
    return "pending";
}

struct UnitInfo
{
    JournalKey key;
    UnitState state = UnitState::Pending;
    /** Shard crashes blamed on this unit so far. */
    unsigned attempts = 0;
    /** Earliest supervisor time (ms) it may be re-assigned. */
    std::uint64_t eligibleAtMs = 0;
    /** Currently assigned to a live shard. */
    bool inFlight = false;
};

/** One live shard process. */
struct Shard
{
    pid_t pid = -1;
    std::uint64_t spawnId = 0;
    std::string journalPath;
    std::string heartbeatPath;
    std::vector<JournalKey> assigned;
    std::uintmax_t lastSize = 0;
    std::uint64_t lastGrowthMs = 0;
    bool stalled = false;
};

/**
 * Shard-side heartbeat emitter (--monitor): one JSONL record per
 * completed unit (plus a "start" record), flushed immediately so the
 * supervisor sees progress while the shard runs. Heartbeats are
 * wall-clock-plane side files — they never feed the journal, the
 * merge, or any deterministic document.
 */
class HeartbeatWriter
{
  public:
    HeartbeatWriter(const std::string &path, std::uint64_t shard_id,
                    std::size_t assigned)
        : file_(std::fopen(path.c_str(), "wb")), shardId_(shard_id),
          assigned_(assigned), start_(std::chrono::steady_clock::now())
    {
        if (file_ == nullptr)
            warn("campaign: cannot open heartbeat file '%s'; shard %llu "
                 "runs unmonitored",
                 path.c_str(),
                 static_cast<unsigned long long>(shard_id));
        else
            emit("start", nullptr);
    }

    ~HeartbeatWriter()
    {
        if (file_ != nullptr)
            std::fclose(file_);
    }

    HeartbeatWriter(const HeartbeatWriter &) = delete;
    HeartbeatWriter &operator=(const HeartbeatWriter &) = delete;

    /** Record unit @p key as journaled (called from the journal's
     * append hook with the unit's payload). */
    void
    beat(const JournalKey &key, const Json &payload)
    {
        if (file_ == nullptr)
            return;
        ++done_;
        // Detection-report telemetry: effectiveness payloads carry the
        // per-detector dynamic report counts; accumulate them so the
        // monitor can surface reports/sec and time-since-last-report
        // for a live campaign.
        std::uint64_t unit_reports = 0;
        if (payload.isObject() && payload.has("detectors") &&
            payload["detectors"].isObject()) {
            for (const auto &[name, d] : payload["detectors"].members()) {
                (void)name;
                if (d.isObject() && d.has("dynamicReports"))
                    unit_reports += d["dynamicReports"].asUint();
            }
        }
        if (unit_reports > 0) {
            reports_ += unit_reports;
            lastReportWall_ = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() -
                                  start_)
                                  .count();
        }
        emit("unit", &key);
    }

  private:
    void
    emit(const char *event, const JournalKey *key)
    {
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count();
        Json rec = Json::object();
        rec.set("shard", shardId_);
        rec.set("event", event);
        if (key != nullptr)
            rec.set("unit",
                    std::to_string(key->first) + "." +
                        std::to_string(key->second));
        rec.set("done", done_);
        rec.set("assigned", static_cast<std::uint64_t>(assigned_));
        rec.set("wallSeconds", wall);
        rec.set("unitsPerSec",
                wall > 0.0 ? static_cast<double>(done_) / wall : 0.0);
        // Profile deltas: the shard's own resource consumption so far.
        rec.set("cpuSeconds", processCpuSeconds());
        rec.set("rssBytes", peakRssBytes());
        rec.set("reports", reports_);
        if (lastReportWall_ >= 0.0)
            rec.set("lastReportWallSeconds", lastReportWall_);
        std::string line = rec.dump();
        line.push_back('\n');
        std::fwrite(line.data(), 1, line.size(), file_);
        std::fflush(file_);
    }

    std::FILE *file_;
    std::uint64_t shardId_;
    std::size_t assigned_;
    std::uint64_t done_ = 0;
    std::uint64_t reports_ = 0;
    double lastReportWall_ = -1.0;
    std::chrono::steady_clock::time_point start_;
};

/** Supervisor-side snapshot of one shard's latest heartbeat. */
struct HeartbeatInfo
{
    bool valid = false;
    std::uint64_t done = 0;
    std::string lastUnit;
    double wallSeconds = 0.0;
    double unitsPerSec = 0.0;
    double cpuSeconds = 0.0;
    std::uint64_t rssBytes = 0;
    /** Dynamic race reports in the shard's journaled units so far. */
    std::uint64_t reports = 0;
    /** Shard wall seconds of the last report-bearing unit (-1 = none
     * yet). */
    double lastReportWallSeconds = -1.0;
    /** Seconds since the file last grew (-1 = unknown). */
    double ageSeconds = -1.0;
};

/** Read the last intact heartbeat record of @p path (a torn trailing
 * line — the writer died mid-append — falls back to the one before). */
HeartbeatInfo
readHeartbeat(const std::string &path)
{
    HeartbeatInfo info;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return info;
    std::string line, last;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::string err;
        const Json rec = Json::parse(line, &err);
        if (err.empty() && rec.isObject() && rec.has("done"))
            last = line;
    }
    if (last.empty())
        return info;
    const Json rec = Json::parse(last);
    info.valid = true;
    info.done = rec["done"].asUint();
    if (rec.has("unit"))
        info.lastUnit = rec["unit"].asString();
    info.wallSeconds = rec["wallSeconds"].asDouble();
    info.unitsPerSec = rec["unitsPerSec"].asDouble();
    info.cpuSeconds = rec["cpuSeconds"].asDouble();
    info.rssBytes = rec["rssBytes"].asUint();
    if (rec.has("reports"))
        info.reports = rec["reports"].asUint();
    if (rec.has("lastReportWallSeconds"))
        info.lastReportWallSeconds =
            rec["lastReportWallSeconds"].asDouble();
    std::error_code ec;
    const auto mtime = std::filesystem::last_write_time(path, ec);
    if (!ec) {
        const auto age =
            std::filesystem::file_time_type::clock::now() - mtime;
        info.ageSeconds = std::max(
            0.0, std::chrono::duration<double>(age).count());
    }
    return info;
}

/** Build one hard.campaign.status.v1 document. */
Json
campaignStatus(const char *phase_state,
               const std::vector<UnitInfo> &units,
               const std::vector<Shard> &live,
               const CampaignCounters &c, const CampaignOptions &opts,
               double elapsed_seconds, std::uint64_t sequence,
               std::uint64_t reaped_reports, double reaped_last_report_at)
{
    std::uint64_t pending = 0, in_flight = 0, completed = 0,
                  restored = 0, quarantined = 0;
    for (const UnitInfo &u : units) {
        switch (u.state) {
          case UnitState::Pending:
            if (u.inFlight)
                ++in_flight;
            else
                ++pending;
            break;
          case UnitState::Completed:
            ++completed;
            break;
          case UnitState::Restored:
            ++restored;
            break;
          case UnitState::Quarantined:
            ++quarantined;
            break;
        }
    }

    Json doc = Json::object();
    doc.set("schema", kCampaignStatusSchema);
    doc.set("signature", opts.signature);
    doc.set("state", phase_state);
    doc.set("sequence", sequence);
    doc.set("elapsedSeconds", elapsed_seconds);

    Json ju = Json::object();
    ju.set("total", static_cast<std::uint64_t>(units.size()));
    ju.set("pending", pending);
    ju.set("inFlight", in_flight);
    ju.set("completed", completed);
    ju.set("restored", restored);
    ju.set("quarantined", quarantined);
    doc.set("units", std::move(ju));

    // Live progress: merged units plus what the live shards' heartbeats
    // report as journaled-but-not-yet-reaped.
    std::uint64_t live_done = 0;
    std::uint64_t live_reports = reaped_reports;
    double last_report_age = reaped_last_report_at >= 0.0
        ? std::max(0.0, elapsed_seconds - reaped_last_report_at)
        : -1.0;
    Json shards = Json::array();
    for (const Shard &shard : live) {
        const HeartbeatInfo hb = readHeartbeat(shard.heartbeatPath);
        live_done += hb.done;
        live_reports += hb.reports;
        // Age of this shard's newest report: time since its last
        // report-bearing beat plus time since the file last grew.
        if (hb.lastReportWallSeconds >= 0.0) {
            const double age =
                (hb.wallSeconds - hb.lastReportWallSeconds) +
                std::max(0.0, hb.ageSeconds);
            if (last_report_age < 0.0 || age < last_report_age)
                last_report_age = age;
        }
        Json js = Json::object();
        js.set("shard", shard.spawnId);
        js.set("pid", static_cast<std::int64_t>(shard.pid));
        js.set("assigned",
               static_cast<std::uint64_t>(shard.assigned.size()));
        js.set("done", hb.done);
        if (!hb.lastUnit.empty())
            js.set("lastUnit", hb.lastUnit);
        js.set("unitsPerSec", hb.unitsPerSec);
        js.set("cpuSeconds", hb.cpuSeconds);
        js.set("rssBytes", hb.rssBytes);
        js.set("reports", hb.reports);
        if (hb.ageSeconds >= 0.0)
            js.set("heartbeatAgeSeconds", hb.ageSeconds);
        js.set("stalled", shard.stalled);
        shards.push(std::move(js));
    }

    const std::uint64_t done =
        completed + restored + quarantined + live_done;
    const std::uint64_t executed = done > restored ? done - restored : 0;
    const double units_per_sec = elapsed_seconds > 0.0
        ? static_cast<double>(executed) / elapsed_seconds
        : 0.0;
    Json jt = Json::object();
    jt.set("unitsDone", done);
    jt.set("unitsPerSec", units_per_sec);
    if (units_per_sec > 0.0 && units.size() >= done)
        jt.set("etaSeconds",
               static_cast<double>(units.size() - done) / units_per_sec);
    doc.set("throughput", std::move(jt));

    Json jr = Json::object();
    const double total = units.empty()
        ? 1.0
        : static_cast<double>(units.size());
    jr.set("retryRate", static_cast<double>(c.retries) / total);
    jr.set("quarantineRate", static_cast<double>(quarantined) / total);
    doc.set("rates", std::move(jr));

    // Detection-report telemetry aggregated from the shard heartbeats
    // (live ones read directly, reaped ones accumulated by the
    // supervisor): total dynamic reports journaled so far, reports/sec
    // of campaign wall time, and (when any shard has reported) the age
    // of the newest report anywhere in the fleet.
    Json jrep = Json::object();
    jrep.set("total", live_reports);
    jrep.set("perSec",
             elapsed_seconds > 0.0
                 ? static_cast<double>(live_reports) / elapsed_seconds
                 : 0.0);
    if (last_report_age >= 0.0)
        jrep.set("lastAgeSeconds", last_report_age);
    doc.set("reports", std::move(jrep));

    Json counters = Json::object();
    counters.set("shardsSpawned", c.shardsSpawned);
    counters.set("shardExitsOk", c.shardExitsOk);
    counters.set("shardCrashes", c.shardCrashes);
    counters.set("shardStalls", c.shardStalls);
    counters.set("retries", c.retries);
    counters.set("restored", c.restored);
    counters.set("injectedCrashes", c.injectedCrashes);
    doc.set("counters", std::move(counters));

    doc.set("shards", std::move(shards));
    return doc;
}

Json
campaignReport(const std::string &state,
               const std::vector<UnitInfo> &units,
               const std::vector<JournalKey> &quarantined,
               const CampaignCounters &c, const CampaignOptions &opts)
{
    Json doc = Json::object();
    doc.set("schema", kCampaignSchema);
    doc.set("signature", opts.signature);
    doc.set("state", state);
    doc.set("shards", static_cast<std::uint64_t>(opts.shards));
    doc.set("maxUnitRetries",
            static_cast<std::uint64_t>(opts.maxUnitRetries));
    doc.set("unitsTotal", static_cast<std::uint64_t>(units.size()));
    Json arr = Json::array();
    for (const UnitInfo &u : units) {
        Json j = Json::object();
        j.set("item", static_cast<std::uint64_t>(u.key.first));
        j.set("run", static_cast<std::int64_t>(u.key.second));
        j.set("outcome", unitStateName(u.state));
        j.set("attempts", static_cast<std::uint64_t>(u.attempts));
        arr.push(std::move(j));
    }
    doc.set("units", std::move(arr));
    Json q = Json::array();
    for (const JournalKey &key : quarantined) {
        Json j = Json::object();
        j.set("item", static_cast<std::uint64_t>(key.first));
        j.set("run", static_cast<std::int64_t>(key.second));
        q.push(std::move(j));
    }
    doc.set("quarantined", std::move(q));
    Json counters = Json::object();
    counters.set("shardsSpawned", c.shardsSpawned);
    counters.set("shardExitsOk", c.shardExitsOk);
    counters.set("shardCrashes", c.shardCrashes);
    counters.set("shardStalls", c.shardStalls);
    counters.set("retries", c.retries);
    counters.set("restored", c.restored);
    counters.set("injectedCrashes", c.injectedCrashes);
    doc.set("counters", std::move(counters));
    return doc;
}

/** Validate a pre-existing manifest on resume: a parseable manifest
 * from a different sweep is refused; a torn one is rebuilt. */
void
checkExistingManifest(const std::string &path,
                      const CampaignOptions &opts)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::string err;
    const Json doc = Json::parse(text, &err);
    if (!err.empty() || !doc.isObject() || !doc.has("schema") ||
        !doc.has("signature")) {
        warn("campaign: manifest '%s' is torn or unreadable; "
             "rebuilding it from the shard journals",
             path.c_str());
        return;
    }
    hard_throw_if(doc["schema"].asString() != kCampaignSchema,
                  ConfigError, "campaign: '%s' is not a %s manifest",
                  path.c_str(), kCampaignSchema);
    hard_throw_if(doc["signature"].asString() != opts.signature,
                  ConfigError,
                  "campaign: manifest '%s' was written by a different "
                  "sweep (signature mismatch); re-run without --resume",
                  path.c_str());
}

} // namespace

std::string
campaignManifestPathFor(const std::string &jsonPath)
{
    return outputStem(jsonPath) + ".campaign.json";
}

std::string
shardJournalPathFor(const std::string &jsonPath, std::uint64_t spawnId)
{
    return outputStem(jsonPath) + kShardInfix + std::to_string(spawnId) +
        kShardSuffix;
}

std::string
campaignStatusPathFor(const std::string &jsonPath)
{
    return outputStem(jsonPath) + ".status.json";
}

std::string
shardHeartbeatPathFor(const std::string &jsonPath, std::uint64_t spawnId)
{
    return outputStem(jsonPath) + kShardInfix + std::to_string(spawnId) +
        kHeartbeatSuffix;
}

CrashSpec
parseCrashSpec(const std::string &spec)
{
    const std::size_t dot = spec.find('.');
    const std::size_t c1 = spec.find(':');
    hard_throw_if(dot == std::string::npos || c1 == std::string::npos ||
                      dot == 0 || c1 < dot + 2,
                  ConfigError,
                  "--inject-shard-crash: expected ITEM.RUN:KIND[:TIMES], "
                  "got '%s'",
                  spec.c_str());
    CrashSpec cs;
    cs.item = static_cast<std::size_t>(
        parseUnsigned(spec.substr(0, dot), "item index", spec));
    std::string run = spec.substr(dot + 1, c1 - dot - 1);
    if (run == "-1" || run == "overhead") {
        cs.run = -1;
    } else {
        cs.run = static_cast<std::int64_t>(
            parseUnsigned(run, "run index", spec));
    }
    std::string rest = spec.substr(c1 + 1);
    std::string kind = rest;
    const std::size_t c2 = rest.find(':');
    if (c2 != std::string::npos) {
        kind = rest.substr(0, c2);
        cs.times = static_cast<unsigned>(
            parseUnsigned(rest.substr(c2 + 1), "repeat count", spec));
        hard_throw_if(cs.times == 0, ConfigError,
                      "--inject-shard-crash: repeat count must be >= 1 "
                      "in '%s'",
                      spec.c_str());
    }
    if (kind == "pre-unit") {
        cs.kind = CrashSpec::Kind::PreUnit;
    } else if (kind == "mid-journal-write") {
        cs.kind = CrashSpec::Kind::MidJournalWrite;
    } else if (kind == "mid-cache-store") {
        cs.kind = CrashSpec::Kind::MidCacheStore;
    } else {
        throw ConfigError(errfmt(
            "--inject-shard-crash: unknown kind '%s' (want pre-unit | "
            "mid-journal-write | mid-cache-store)",
            kind.c_str()));
    }
    cs.valid = true;
    return cs;
}

std::vector<JournalKey>
batchCampaignUnits(const std::vector<BatchItem> &items)
{
    std::vector<JournalKey> units;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (items[i].effectiveness)
            for (unsigned r = 0; r <= items[i].runs; ++r)
                units.push_back({i, static_cast<std::int64_t>(r)});
        if (items[i].overhead)
            units.push_back({i, -1});
    }
    return units;
}

ShardBody
makeBatchShardBody(std::vector<BatchItem> items,
                   std::uint64_t unitTimeoutMs, TraceCache *cache)
{
    return [items = std::move(items), unitTimeoutMs, cache](
               const std::vector<JournalKey> &units,
               BatchJournal &journal, const CrashSpec *crash) -> int {
        const std::set<JournalKey> assigned(units.begin(), units.end());
        BatchOptions bo;
        bo.keepGoing = true;
        bo.journal = &journal;
        bo.unitTimeoutMs = unitTimeoutMs;
        bo.unitFilter = [&assigned](std::size_t i, std::int64_t r) {
            return assigned.count({i, r}) != 0;
        };
        std::shared_ptr<std::atomic<bool>> armed;
        if (crash != nullptr && crash->valid) {
            const JournalKey ck = crash->key();
            switch (crash->kind) {
              case CrashSpec::Kind::PreUnit:
                bo.unitStartHook = [ck](std::size_t i, std::int64_t r) {
                    if (JournalKey{i, r} == ck)
                        ::raise(SIGKILL);
                };
                break;
              case CrashSpec::Kind::MidJournalWrite:
                journal.killMidAppend(ck);
                break;
              case CrashSpec::Kind::MidCacheStore:
                // Armed only while the target unit runs: its cold-path
                // trace-cache store dies after the temp file is
                // written but before the rename publishes it.
                armed = std::make_shared<std::atomic<bool>>(false);
                bo.unitStartHook = [ck, armed](std::size_t i,
                                               std::int64_t r) {
                    armed->store(JournalKey{i, r} == ck);
                };
                if (cache != nullptr)
                    cache->setStoreCrashHook([armed] {
                        if (armed->load())
                            ::raise(SIGKILL);
                    });
                break;
            }
        }
        // Serial pool: the supervisor's blame attribution ("the first
        // incomplete assigned unit killed the shard") requires units
        // to execute in assignment order, one at a time.
        RunPool pool(1);
        try {
            runBatch(items, pool, bo);
        } catch (const std::exception &e) {
            warn("campaign: shard failed: %s", e.what());
            return 1;
        } catch (...) {
            return 1;
        }
        return 0;
    };
}

Json
batchQuarantinePayload(const std::vector<BatchItem> &items,
                       const JournalKey &key, unsigned attempts)
{
    const auto [i, r] = key;
    hard_throw_if(i >= items.size(), ConfigError,
                  "campaign: quarantined unit %zu.%lld is outside the "
                  "item list",
                  i, static_cast<long long>(r));
    const std::string msg = errfmt(
        "unit crashed its shard %u time%s and was quarantined", attempts,
        attempts == 1 ? "" : "s");
    Json j = Json::object();
    if (r == -1) {
        j.set("outcome", "quarantined");
        j.set("errorType", "ShardCrashError");
        j.set("errorMessage", msg);
        return j;
    }
    // Shaped exactly like a journaled failed EffectivenessRun, so
    // effectivenessRunFromJson restores it with no special case.
    j.set("index", static_cast<std::uint64_t>(r));
    j.set("raceFree", static_cast<std::uint64_t>(r) >= items[i].runs);
    j.set("outcome", "quarantined");
    j.set("errorType", "ShardCrashError");
    j.set("errorMessage", msg);
    j.set("injectionValid", false);
    j.set("detectors", Json::object());
    return j;
}

CampaignResult
runCampaign(const std::vector<JournalKey> &units,
            const CampaignOptions &opts, const ShardBody &body)
{
    hard_throw_if(opts.outputBase.empty(), ConfigError,
                  "campaign: outputBase is required (shard journals and "
                  "the manifest derive from it)");
    hard_throw_if(opts.shards == 0, ConfigError,
                  "campaign: --shards must be >= 1");

    CampaignResult result;
    std::vector<UnitInfo> state(units.size());
    std::map<JournalKey, std::size_t> index;
    for (std::size_t i = 0; i < units.size(); ++i) {
        state[i].key = units[i];
        hard_throw_if(!index.emplace(units[i], i).second, ConfigError,
                      "campaign: duplicate unit %zu.%lld",
                      units[i].first,
                      static_cast<long long>(units[i].second));
    }

    const std::string manifest_path =
        campaignManifestPathFor(opts.outputBase);
    std::uint64_t next_spawn = 0;

    // Resume: salvage every completed unit from the shard journals of
    // the interrupted campaign. The journals are the source of truth;
    // the manifest is only checked for cross-sweep contamination.
    if (opts.resume) {
        checkExistingManifest(manifest_path, opts);
        const std::string stem = outputStem(opts.outputBase);
        const std::filesystem::path stem_path(stem);
        const std::string prefix =
            stem_path.filename().string() + kShardInfix;
        const std::filesystem::path dir = stem_path.has_parent_path()
            ? stem_path.parent_path()
            : std::filesystem::path(".");
        std::error_code ec;
        for (const auto &entry :
             std::filesystem::directory_iterator(dir, ec)) {
            const std::string name = entry.path().filename().string();
            if (name.rfind(prefix, 0) != 0 ||
                name.size() <= prefix.size() + std::strlen(kShardSuffix) ||
                name.compare(name.size() - std::strlen(kShardSuffix),
                             std::strlen(kShardSuffix),
                             kShardSuffix) != 0)
                continue;
            const std::string id_text = name.substr(
                prefix.size(),
                name.size() - prefix.size() - std::strlen(kShardSuffix));
            char *end = nullptr;
            const std::uint64_t id =
                std::strtoull(id_text.c_str(), &end, 10);
            if (end == nullptr || *end != '\0')
                continue;
            if (id >= next_spawn)
                next_spawn = id + 1;
            const JournalEntries got = loadShardEntries(
                entry.path().string(), opts.signature);
            for (const auto &[key, payload] : got) {
                const auto it = index.find(key);
                if (it == index.end() ||
                    state[it->second].state != UnitState::Pending)
                    continue;
                result.entries[key] = payload;
                state[it->second].state = UnitState::Restored;
                ++result.counters.restored;
            }
        }
        if (result.counters.restored != 0)
            inform("campaign: restored %llu unit(s) from previous "
                   "shard journals",
                   static_cast<unsigned long long>(
                       result.counters.restored));
    }

    writeFileAtomic(manifest_path,
                    campaignReport("pending", state, result.quarantined,
                                   result.counters, opts)
                            .dump() +
                        "\n");

    unsigned inject_left =
        opts.injectCrash.valid ? opts.injectCrash.times : 0;
    std::vector<Shard> live;
    const auto t0 = std::chrono::steady_clock::now();
    auto now_ms = [&t0] {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
    };

    auto pending_left = [&state] {
        for (const UnitInfo &u : state)
            if (u.state == UnitState::Pending)
                return true;
        return false;
    };

    // Live status plane (--monitor): atomically re-published at least
    // every statusIntervalMs while the campaign runs, and once more in
    // its final "complete" form. A status publish failure is warned
    // about, never fatal — monitoring must not kill the sweep.
    const std::string status_path =
        campaignStatusPathFor(opts.outputBase);
    std::uint64_t status_seq = 0;
    std::uint64_t last_status_ms = 0;
    // Report telemetry outliving its shard: when a shard is reaped its
    // final heartbeat is folded into these so the campaign-wide totals
    // do not drop as shards retire.
    std::uint64_t reaped_reports = 0;
    double reaped_last_report_at = -1.0;
    auto publish_status = [&](const char *phase_state) {
        if (!opts.monitor)
            return;
        ++status_seq;
        last_status_ms = now_ms();
        const Json doc = campaignStatus(
            phase_state, state, live, result.counters, opts,
            static_cast<double>(last_status_ms) / 1000.0, status_seq,
            reaped_reports, reaped_last_report_at);
        try {
            writeFileAtomic(status_path, doc.dump(2) + "\n");
        } catch (const std::exception &e) {
            warn("campaign: status publish failed: %s", e.what());
        }
    };
    publish_status("running");

    while (pending_left() || !live.empty()) {
        const std::uint64_t now = now_ms();
        bool progressed = false;

        // Reap finished shards; salvage their journals; blame, retry
        // or quarantine whatever they left incomplete.
        for (std::size_t s = 0; s < live.size();) {
            Shard &shard = live[s];
            int wstatus = 0;
            const pid_t r = ::waitpid(shard.pid, &wstatus, WNOHANG);
            if (r == 0) {
                ++s;
                continue;
            }
            progressed = true;
            const bool clean = r == shard.pid && WIFEXITED(wstatus) &&
                WEXITSTATUS(wstatus) == 0;
            if (opts.monitor) {
                // Fold the dead shard's final heartbeat into the
                // supervisor-side report totals before it leaves the
                // live list.
                const HeartbeatInfo hb =
                    readHeartbeat(shard.heartbeatPath);
                reaped_reports += hb.reports;
                if (hb.lastReportWallSeconds >= 0.0) {
                    const double age =
                        (hb.wallSeconds - hb.lastReportWallSeconds) +
                        std::max(0.0, hb.ageSeconds);
                    const double at =
                        static_cast<double>(now) / 1000.0 - age;
                    if (at > reaped_last_report_at)
                        reaped_last_report_at = at;
                }
            }
            const JournalEntries got =
                loadShardEntries(shard.journalPath, opts.signature);
            for (const auto &[key, payload] : got) {
                const auto it = index.find(key);
                if (it == index.end() ||
                    state[it->second].state != UnitState::Pending)
                    continue;
                result.entries[key] = payload;
                state[it->second].state = UnitState::Completed;
            }
            if (clean) {
                ++result.counters.shardExitsOk;
            } else {
                ++result.counters.shardCrashes;
                if (WIFSIGNALED(wstatus))
                    warn("campaign: shard %llu (pid %ld) killed by "
                         "signal %d%s",
                         static_cast<unsigned long long>(shard.spawnId),
                         static_cast<long>(shard.pid),
                         WTERMSIG(wstatus),
                         shard.stalled ? " (stall detector)" : "");
                else
                    warn("campaign: shard %llu (pid %ld) exited with "
                         "status %d",
                         static_cast<unsigned long long>(shard.spawnId),
                         static_cast<long>(shard.pid),
                         WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1);
            }
            // Shards execute serially in assignment order, so the
            // first assigned unit with no journal record is exactly
            // the one that was in flight when the shard died.
            bool blamed = false;
            for (const JournalKey &key : shard.assigned) {
                UnitInfo &u = state[index.at(key)];
                if (u.state != UnitState::Pending)
                    continue;
                u.inFlight = false;
                if (blamed)
                    continue; // innocent bystander: requeue immediately
                blamed = true;
                ++u.attempts;
                result.attempts[key] = u.attempts;
                if (u.attempts >= opts.maxUnitRetries) {
                    u.state = UnitState::Quarantined;
                    warn("campaign: unit %zu.%lld crashed its shard %u "
                         "time(s); quarantined",
                         key.first, static_cast<long long>(key.second),
                         u.attempts);
                } else {
                    ++result.counters.retries;
                    u.eligibleAtMs =
                        now + backoffMs(key, u.attempts, opts);
                    inform("campaign: unit %zu.%lld blamed for the "
                           "crash; retry %u/%u after backoff",
                           key.first,
                           static_cast<long long>(key.second),
                           u.attempts, opts.maxUnitRetries);
                }
            }
            live[s] = std::move(live.back());
            live.pop_back();
        }

        // Stall detection: a live shard whose journal stopped growing
        // is wedged beyond what in-process budgets can interrupt.
        if (opts.shardStallTimeoutMs != 0) {
            for (Shard &shard : live) {
                if (shard.stalled)
                    continue;
                const std::uintmax_t size =
                    fileSizeOrZero(shard.journalPath);
                if (size != shard.lastSize) {
                    shard.lastSize = size;
                    shard.lastGrowthMs = now;
                } else if (now - shard.lastGrowthMs >
                           opts.shardStallTimeoutMs) {
                    warn("campaign: shard %llu (pid %ld) made no "
                         "journal progress for %llu ms; killing it",
                         static_cast<unsigned long long>(shard.spawnId),
                         static_cast<long>(shard.pid),
                         static_cast<unsigned long long>(
                             opts.shardStallTimeoutMs));
                    shard.stalled = true;
                    ++result.counters.shardStalls;
                    ::kill(shard.pid, SIGKILL);
                }
            }
        }

        // Spawn: hand contiguous slices of the eligible pending units
        // to free shard slots, preserving global unit order.
        if (live.size() < opts.shards) {
            std::vector<JournalKey> eligible;
            for (const UnitInfo &u : state)
                if (u.state == UnitState::Pending && !u.inFlight &&
                    u.eligibleAtMs <= now)
                    eligible.push_back(u.key);
            const std::size_t slots = opts.shards - live.size();
            if (!eligible.empty()) {
                const std::size_t nshards =
                    eligible.size() < slots ? eligible.size() : slots;
                const std::size_t chunk =
                    (eligible.size() + nshards - 1) / nshards;
                for (std::size_t k = 0; k < nshards; ++k) {
                    const std::size_t lo = k * chunk;
                    const std::size_t hi =
                        lo + chunk < eligible.size() ? lo + chunk
                                                     : eligible.size();
                    if (lo >= hi)
                        break;
                    std::vector<JournalKey> slice(
                        eligible.begin() +
                            static_cast<std::ptrdiff_t>(lo),
                        eligible.begin() +
                            static_cast<std::ptrdiff_t>(hi));

                    bool armed = false;
                    if (inject_left > 0) {
                        for (const JournalKey &key : slice)
                            if (key == opts.injectCrash.key()) {
                                armed = true;
                                break;
                            }
                        if (armed) {
                            --inject_left;
                            ++result.counters.injectedCrashes;
                        }
                    }

                    Shard shard;
                    shard.spawnId = next_spawn++;
                    shard.journalPath = shardJournalPathFor(
                        opts.outputBase, shard.spawnId);
                    shard.heartbeatPath = shardHeartbeatPathFor(
                        opts.outputBase, shard.spawnId);
                    shard.assigned = slice;
                    shard.lastGrowthMs = now;

                    // The supervisor is single-threaded, so fork() is
                    // safe; flush stdio first so the child does not
                    // replay buffered parent output.
                    std::fflush(stdout);
                    std::fflush(stderr);
                    const pid_t pid = ::fork();
                    hard_throw_if(pid < 0, ConfigError,
                                  "campaign: fork failed: %s",
                                  std::strerror(errno));
                    if (pid == 0) {
                        int status = 1;
                        try {
                            BatchJournal journal(shard.journalPath,
                                                 opts.signature, false);
                            // Heartbeats piggyback on the journal's
                            // append hook: every journaled unit emits
                            // one heartbeat record, and the journal
                            // bytes themselves are untouched.
                            std::unique_ptr<HeartbeatWriter> hb;
                            if (opts.monitor) {
                                hb = std::make_unique<HeartbeatWriter>(
                                    shard.heartbeatPath, shard.spawnId,
                                    slice.size());
                                journal.setAppendHook(
                                    [&hb](const JournalKey &key,
                                          const Json &payload) {
                                        hb->beat(key, payload);
                                    });
                            }
                            status = body(slice, journal,
                                          armed ? &opts.injectCrash
                                                : nullptr);
                        } catch (...) {
                            status = 1;
                        }
                        // _Exit: no atexit handlers, no static
                        // destructors — the child shares the parent's
                        // address-space snapshot and must not run its
                        // cleanup.
                        std::_Exit(status);
                    }
                    shard.pid = pid;
                    ++result.counters.shardsSpawned;
                    inform("campaign: shard %llu (pid %ld) started "
                           "with %zu unit(s)%s",
                           static_cast<unsigned long long>(
                               shard.spawnId),
                           static_cast<long>(pid), slice.size(),
                           armed ? " [crash injector armed]" : "");
                    for (const JournalKey &key : slice)
                        state[index.at(key)].inFlight = true;
                    live.push_back(std::move(shard));
                    progressed = true;
                }
            }
        }

        if (opts.monitor &&
            now_ms() - last_status_ms >= opts.statusIntervalMs)
            publish_status("running");

        if (!progressed)
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    // Synthesize payloads for quarantined units so the merged entries
    // cover the full unit space.
    for (const UnitInfo &u : state) {
        if (u.state != UnitState::Quarantined)
            continue;
        result.quarantined.push_back(u.key);
        hard_throw_if(!opts.quarantinePayload, ConfigError,
                      "campaign: unit %zu.%lld was quarantined but no "
                      "quarantine payload synthesizer is configured",
                      u.key.first,
                      static_cast<long long>(u.key.second));
        result.entries[u.key] =
            opts.quarantinePayload(u.key, u.attempts);
    }

    result.report = campaignReport("complete", state, result.quarantined,
                                   result.counters, opts);
    writeFileAtomic(manifest_path, result.report.dump() + "\n");
    publish_status("complete");
    return result;
}

} // namespace hard
