/**
 * @file
 * A small fixed-size worker pool for fanning out independent
 * simulation runs.
 *
 * Every unit of experiment work in this repository (one System run
 * with its own Program, RNG stream and detector set) is fully
 * independent of every other, so the batch driver can execute them in
 * any order on any thread — provided the *merge* of their results is
 * deterministic. RunPool therefore exposes an indexed-batch interface:
 * tasks are identified by their index, workers pull indices from a
 * shared atomic cursor (cheap work stealing), and the caller receives
 * results/exceptions keyed by index so merged output never depends on
 * completion order.
 *
 * Guarantees:
 *  - jobs == 1 degenerates to inline serial execution on the calling
 *    thread, in index order, with no threads created;
 *  - an exception thrown by a task is rethrown to the caller after the
 *    whole batch has drained (workers never die mid-batch); when
 *    several tasks throw, the lowest task index wins, deterministically;
 *  - runCollect() instead returns every task's exception keyed by
 *    index, the primitive behind --keep-going batch sweeps;
 *  - an empty batch returns immediately;
 *  - the pool is reusable for any number of batches.
 */

#ifndef HARD_HARNESS_RUN_POOL_HH
#define HARD_HARNESS_RUN_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hard
{

/** Fixed-size pool executing indexed batches of independent tasks. */
class RunPool
{
  public:
    /**
     * @param jobs Worker count; 0 selects defaultJobs(). With jobs == 1
     * no threads are created and batches run inline on the caller.
     */
    explicit RunPool(unsigned jobs = 0);

    /** Joins all workers (any in-flight batch completes first). */
    ~RunPool();

    RunPool(const RunPool &) = delete;
    RunPool &operator=(const RunPool &) = delete;

    /** @return the configured degree of parallelism (>= 1). */
    unsigned jobs() const { return jobs_; }

    /**
     * Execute fn(0) .. fn(count - 1) across the workers and block
     * until all complete. Rethrows the lowest-index task exception
     * (if any) once the batch has fully drained.
     */
    void runIndexed(std::size_t count,
                    const std::function<void(std::size_t)> &fn);

    /**
     * Keep-going variant of runIndexed: every task runs even when
     * earlier ones fail, and nothing is rethrown. Returns one
     * exception slot per task index (null where the task succeeded),
     * so the caller can classify and report all failures instead of
     * just the first. With jobs == 1 tasks run inline in index order.
     */
    std::vector<std::exception_ptr>
    runCollect(std::size_t count,
               const std::function<void(std::size_t)> &fn);

    /**
     * Map an index range through @p fn, collecting results in index
     * order (never completion order). T must be default-constructible.
     */
    template <typename T>
    std::vector<T>
    map(std::size_t count, const std::function<T(std::size_t)> &fn)
    {
        std::vector<T> out(count);
        runIndexed(count,
                   [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /** @return the host's hardware concurrency (at least 1). */
    static unsigned defaultJobs();

  private:
    /** State of the batch currently being drained (nullptr if idle). */
    struct Batch;

    void workerLoop();

    /** Run a pooled batch to completion; per-index exception slots. */
    std::vector<std::exception_ptr>
    drain(std::size_t count, const std::function<void(std::size_t)> &fn);

    const unsigned jobs_;
    std::vector<std::thread> workers_;

    std::mutex callerMu_; // serializes concurrent runIndexed callers
    std::mutex mu_;
    std::condition_variable wake_; // workers wait for a batch / stop
    std::condition_variable done_; // caller waits for batch drain
    Batch *batch_ = nullptr;       // owned by runIndexed's frame
    bool stop_ = false;
};

} // namespace hard

#endif // HARD_HARNESS_RUN_POOL_HH
