/**
 * @file
 * The overhead-vs-latency frontier: one production workload swept
 * across detection-sampling rates (sim/sampling.hh), measuring at each
 * rate what always-on monitoring costs and what it buys.
 *
 * Each rate point runs two legs over the same workload:
 *
 *  - an *effectiveness* leg (fast mode by default, sharing one
 *    TraceCache recording across every rate, since sampling filters at
 *    replay time and is not part of the trace key): injected-race runs
 *    with detection-latency telemetry enabled, yielding coverage
 *    (bugs detected / injected) and the exposure-to-first-report
 *    latency distribution;
 *  - an *overhead* leg (always cycle mode): measureOverhead with the
 *    same sampling schedule gating the HARD timing charges, yielding
 *    execution-time overhead, metadata traffic, and bus occupancy.
 *
 * The fold emits a `hard.frontier.v1` document with points sorted by
 * rate descending (full monitoring first). Granule-mode decisions nest
 * across rates, so overhead falls monotonically along the sweep while
 * coverage degrades — the frontier an operator picks a duty cycle
 * from.
 */

#ifndef HARD_HARNESS_FRONTIER_HH
#define HARD_HARNESS_FRONTIER_HH

#include <string>
#include <vector>

#include "harness/batch.hh"

namespace hard
{

/** Configuration of one frontier sweep. */
struct FrontierOptions
{
    /** Workload name (default: the open-loop production server). */
    std::string workload = "server";
    WorkloadParams wp;
    /** Base simulator config; sampling is overwritten per rate. */
    SimConfig sim;
    /** HARD shape for the overhead legs (and the default detector). */
    HardConfig hardCfg;
    /**
     * Detector set for the effectiveness legs; when null a single
     * HardDetector("hard", hardCfg) is used.
     */
    DetectorFactory factory;

    /** Sampling rates to sweep (deduplicated, sorted descending). */
    std::vector<double> rates{1.0, 0.5, 0.25, 0.125};
    SamplingSpec::Mode sampleMode = SamplingSpec::Mode::granule;
    std::uint64_t sampleSeed = 1;
    /** Epoch-mode duty-cycle period. */
    Cycle samplePeriod = 65536;

    /** Injected-race runs per rate point. */
    unsigned runs = 10;
    std::uint64_t seed0 = 1000;

    /** Effectiveness-leg execution mode (overhead legs are always
     * cycle-level). */
    ExecMode effMode = ExecMode::Fast;
    /** Recording store shared by the fast-mode legs (may be null). */
    TraceCache *traceCache = nullptr;

    /** Also run the cycle-level overhead leg per rate. */
    bool overhead = true;
    /** Overhead variant: §3.4 directory metadata management. */
    bool directory = false;
};

/**
 * Build the per-rate batch items for @p o. Exposed separately so
 * campaign sharding can enumerate the same unit space the inline
 * sweep runs.
 */
std::vector<BatchItem> frontierItems(const FrontierOptions &o);

/**
 * Fold batch results produced from frontierItems(@p o) back into the
 * `hard.frontier.v1` document.
 */
Json frontierJson(const FrontierOptions &o,
                  const std::vector<BatchItemResult> &results);

/**
 * Run the full frontier sweep across @p pool and return the
 * `hard.frontier.v1` document. @p opts carries the usual batch
 * failure-containment/journal knobs.
 */
Json runFrontier(const FrontierOptions &o, RunPool &pool,
                 const BatchOptions &opts = {});

} // namespace hard

#endif // HARD_HARNESS_FRONTIER_HH
