/**
 * @file
 * Crash-tolerant sharded campaign orchestration.
 *
 * A campaign is a batch sweep whose unit space is partitioned across N
 * shard *processes* rather than threads: a single supervisor forks
 * shards, each shard runs its assigned units through the ordinary
 * batch driver and journals every completed unit to its own
 * hard.journal.v1 file, and the supervisor merges the shard journals
 * back into one JournalEntries map. Because every unit is
 * deterministic and journal payloads round-trip losslessly, feeding
 * the merged entries back through runBatch() as restored results
 * yields a hard.batch.v2 document byte-identical to the same sweep
 * run crash-free in one process — regardless of shard count, crash
 * pattern, or interleaving.
 *
 * Process isolation is the point: a unit that SIGSEGVs, OOMs, or is
 * SIGKILLed takes down only its shard. The supervisor detects the
 * death (non-zero exit, signal, or a stall in journal growth), salvages
 * every intact journal record the shard flushed before dying, blames
 * the first incomplete assigned unit (shards execute serially in
 * assignment order, so the blame is exact), and re-queues it with
 * exponential backoff + deterministic jitter. A unit that crashes its
 * shard maxUnitRetries times is quarantined: it gets a synthesized
 * "quarantined" payload instead of ever running again, and the rest of
 * the sweep completes around it.
 *
 * Torn state is recovered everywhere: truncated journal lines are
 * skipped (loadJournal), headerless journals from shards killed
 * before their first flush count as empty, orphaned trace-cache temp
 * files are swept on cache open, and the campaign manifest is
 * published with an atomic rename so a torn manifest is rebuilt
 * rather than trusted.
 */

#ifndef HARD_HARNESS_CAMPAIGN_HH
#define HARD_HARNESS_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/json.hh"
#include "harness/batch.hh"
#include "harness/journal.hh"

namespace hard
{

/** Campaign manifest/report schema tag. */
extern const char *const kCampaignSchema;

/** Live campaign status schema tag (the --monitor output). */
extern const char *const kCampaignStatusSchema;

/**
 * Crash-fault injection spec for the built-in injector
 * (--inject-shard-crash=ITEM.RUN:KIND[:TIMES]). The supervisor arms
 * the spec in at most TIMES spawned shards whose assignment contains
 * the unit; the armed shard SIGKILLs itself at the chosen point while
 * processing that unit.
 */
struct CrashSpec
{
    enum class Kind
    {
        /** Die before the unit executes (after earlier assigned units
         * completed and were journaled). */
        PreUnit,
        /** Die halfway through fwrite()ing the unit's journal record,
         * leaving a torn line (BatchJournal::killMidAppend). */
        MidJournalWrite,
        /** Die between writing a trace-cache temp file and the
         * publishing rename, orphaning the temp
         * (TraceCache::setStoreCrashHook); only fires in fast mode on
         * a cold cache slot. */
        MidCacheStore,
    };

    bool valid = false;
    std::size_t item = 0;
    std::int64_t run = 0;
    Kind kind = Kind::PreUnit;
    /** How many shard spawns to arm before the injector goes inert
     * (1 = crash once, then let the retry succeed; large values drive
     * the unit into quarantine). */
    unsigned times = 1;

    JournalKey key() const { return {item, run}; }
};

/**
 * Parse "ITEM.RUN:KIND[:TIMES]" (RUN may be -1 for the overhead
 * unit; KIND is pre-unit | mid-journal-write | mid-cache-store).
 * Throws ConfigError on malformed input.
 */
CrashSpec parseCrashSpec(const std::string &spec);

/**
 * The work a shard performs, run in the forked child: execute
 * @p units (in the given order — the supervisor's blame attribution
 * depends on it), journaling each completed unit to @p journal.
 * @p crash is non-null when this shard is armed with an injected
 * crash. Returns the shard's exit status (0 = success).
 */
using ShardBody = std::function<int(const std::vector<JournalKey> &units,
                                    BatchJournal &journal,
                                    const CrashSpec *crash)>;

/** Supervision knobs for runCampaign(). */
struct CampaignOptions
{
    /** Maximum concurrently live shard processes. */
    unsigned shards = 2;
    /**
     * A unit that crashes its shard this many times is quarantined
     * instead of retried again (its synthesized payload carries
     * outcome "quarantined").
     */
    unsigned maxUnitRetries = 2;
    /** First-retry backoff; doubles per crash of the same unit. */
    std::uint64_t backoffBaseMs = 25;
    /** Backoff ceiling. */
    std::uint64_t backoffCapMs = 1000;
    /** Seed of the deterministic backoff jitter (plus unit identity
     * and attempt number), so retry schedules decorrelate without a
     * wall-clock/random dependence. */
    std::uint64_t backoffJitterSeed = 0;
    /**
     * Supervisor-side stall detector: a live shard whose journal file
     * has not grown for this long is presumed wedged (in a way even
     * the in-process wall-clock budget cannot interrupt — e.g. an
     * uninterruptible syscall), SIGKILLed, and handled like any other
     * crash. 0 = off.
     */
    std::uint64_t shardStallTimeoutMs = 0;
    /**
     * Base path the campaign derives its on-disk names from
     * (conventionally the --json output path): shard journals are
     * "<stem>.shard-<spawn>.journal.jsonl" and the manifest/report is
     * campaignManifestPathFor(outputBase). Required.
     */
    std::string outputBase;
    /** Canonical sweep signature (journal headers + manifest; resume
     * across a signature change is refused). */
    std::string signature;
    /** Merge completed units from the shard journals of a previous
     * interrupted campaign before spawning anything. */
    bool resume = false;
    /** Built-in crash-fault injector (tests/CI); inert when !valid. */
    CrashSpec injectCrash;
    /**
     * Synthesize the journal payload of a quarantined unit, so the
     * merged entries cover the full unit space (batch campaigns use
     * batchQuarantinePayload; the fuzz campaign supplies its own).
     * Required if any unit can be quarantined.
     */
    std::function<Json(const JournalKey &key, unsigned attempts)>
        quarantinePayload;
    /**
     * Live monitoring (--monitor): shards append per-unit heartbeat
     * records to "<stem>.shard-<spawn>.heartbeat.jsonl" side files and
     * the supervisor aggregates them into an atomically-renamed
     * hard.campaign.status.v1 document at
     * campaignStatusPathFor(outputBase), re-published at least every
     * statusIntervalMs while the campaign runs. Strictly wall-clock
     * plane: heartbeats and status never touch the shard journals, the
     * merged entries, or the batch/fuzz JSON, all of which stay
     * byte-identical with monitoring on.
     */
    bool monitor = false;
    /** Minimum interval between status publishes (0 = every
     * supervisor loop iteration). */
    std::uint64_t statusIntervalMs = 250;
};

/** Supervisor-side event counters (reported, never merged into the
 * batch JSON — that document stays byte-identical to a non-campaign
 * sweep). */
struct CampaignCounters
{
    std::uint64_t shardsSpawned = 0;
    std::uint64_t shardExitsOk = 0;
    /** Shards that died by signal or non-zero exit. */
    std::uint64_t shardCrashes = 0;
    /** Shards SIGKILLed by the stall detector (also counted in
     * shardCrashes when reaped). */
    std::uint64_t shardStalls = 0;
    /** Unit re-queues after a blamed crash. */
    std::uint64_t retries = 0;
    /** Units restored from a previous campaign's shard journals. */
    std::uint64_t restored = 0;
    /** Crash-spec arms actually handed to a spawned shard. */
    std::uint64_t injectedCrashes = 0;
};

/** Everything a finished campaign produced. */
struct CampaignResult
{
    /** Merged payloads covering the full unit space (completed,
     * restored, and synthesized quarantined units). */
    JournalEntries entries;
    /** Units quarantined after repeated shard crashes, in unit
     * order. */
    std::vector<JournalKey> quarantined;
    /** Crash count per unit that ever crashed a shard. */
    std::map<JournalKey, unsigned> attempts;
    CampaignCounters counters;
    /** The final hard.campaign.v1 report (also written to
     * campaignManifestPathFor(outputBase)). */
    Json report;
};

/**
 * Run @p units to completion under crash supervision: fork up to
 * opts.shards concurrent shard processes executing @p body over
 * disjoint slices of the unit space, merge their journals, retry or
 * quarantine units whose shard died, and return the merged results.
 * The unit vector's order is the canonical global order — shards
 * receive contiguous slices of it and blame attribution assumes each
 * shard processes its slice serially in order (RunPool(1) inside the
 * body).
 */
CampaignResult runCampaign(const std::vector<JournalKey> &units,
                           const CampaignOptions &opts,
                           const ShardBody &body);

/**
 * Enumerate the unit space of @p items in the exact order runBatch's
 * execution phase does — per item: effectiveness runs 0..runs, then
 * the overhead unit (-1). Campaign blame attribution and shard
 * slicing both build on this order.
 */
std::vector<JournalKey> batchCampaignUnits(const std::vector<BatchItem> &items);

/**
 * The standard shard body for a batch campaign: runs @p items through
 * runBatch with keepGoing, a unitFilter restricted to the shard's
 * assignment, the given per-unit wall-clock budget, and the crash
 * injector wired to the journal and @p cache (the same TraceCache the
 * items reference, or null). @p items is captured by value — the body
 * outlives the caller's frame only in the forked child, but cheap
 * insurance is cheap.
 */
ShardBody makeBatchShardBody(std::vector<BatchItem> items,
                             std::uint64_t unitTimeoutMs,
                             TraceCache *cache);

/**
 * Synthesized journal payload of a quarantined batch unit: an
 * EffectivenessRun (or overhead record, run == -1) with outcome
 * "quarantined" and errorType "ShardCrashError", shaped exactly like
 * a journaled failure so restoration and batch JSON need no special
 * cases beyond the new outcome string.
 */
Json batchQuarantinePayload(const std::vector<BatchItem> &items,
                            const JournalKey &key, unsigned attempts);

/** @return the manifest/report path paired with a batch JSON output
 * path: "<path minus .json>.campaign.json". */
std::string campaignManifestPathFor(const std::string &jsonPath);

/** @return the journal path of spawned shard @p spawnId:
 * "<path minus .json>.shard-<spawnId>.journal.jsonl". */
std::string shardJournalPathFor(const std::string &jsonPath,
                                std::uint64_t spawnId);

/** @return the live status path paired with a batch JSON output path:
 * "<path minus .json>.status.json" (only written under --monitor). */
std::string campaignStatusPathFor(const std::string &jsonPath);

/** @return the heartbeat side-file path of spawned shard @p spawnId:
 * "<path minus .json>.shard-<spawnId>.heartbeat.jsonl". */
std::string shardHeartbeatPathFor(const std::string &jsonPath,
                                  std::uint64_t spawnId);

} // namespace hard

#endif // HARD_HARNESS_CAMPAIGN_HH
