/**
 * @file
 * Parallel batch-experiment driver.
 *
 * The paper's evaluation is a large sweep — 6 workloads x ~10
 * injected-race runs x several detector configurations — in which
 * every (workload, seed, detector-set) run is fully independent: each
 * gets its own Program, System, RNG stream (seed0 + r, identical to
 * the serial harness) and freshly constructed detectors. This driver
 * decomposes runEffectiveness()/measureOverhead() sweeps into such
 * run units, fans them out across a RunPool, and folds the results
 * back *in run-index order*, so the merged EffectivenessResult /
 * OverheadResult values are bit-identical to the serial harness
 * regardless of worker count or completion order
 * (tests/test_batch_equivalence.cc locks this down).
 */

#ifndef HARD_HARNESS_BATCH_HH
#define HARD_HARNESS_BATCH_HH

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/json.hh"
#include "harness/experiment.hh"
#include "harness/journal.hh"
#include "harness/run_pool.hh"
#include "trace/trace_cache.hh"

namespace hard
{

/** Outcome of one detector on one effectiveness run unit. */
struct RunOutcome
{
    /** Injected runs: did the detector find the injected bug? */
    bool detected = false;
    /** Distinct source sites reported in this run. */
    std::set<SiteId> sites;
    /** Dynamic (pre-deduplication) report count in this run. */
    std::uint64_t dynamicReports = 0;
};

/**
 * One effectiveness run unit: injected run r (index == r < numRuns,
 * seeded with seed0 + r) or the final race-free run
 * (index == numRuns).
 */
struct EffectivenessRun
{
    unsigned index = 0;
    bool raceFree = false;
    /** False when no injectable critical section was found. */
    bool injectionValid = false;
    std::map<std::string, RunOutcome> byDetector;

    /**
     * How the unit ended: "ok", a failure label ("failed" |
     * "deadlock" | "budget_exceeded" | "timeout"), "skipped" (not
     * executed because --max-failures was exceeded or the unit was
     * deselected by BatchOptions::unitFilter), or "quarantined"
     * (synthesized by the campaign supervisor for a unit that
     * repeatedly crashed its shard; see harness/campaign.hh). Non-ok
     * runs contribute nothing to the aggregate scores.
     */
    std::string outcome = "ok";
    /** Failure detail (empty when outcome is "ok"/"skipped"). */
    std::string errorType;
    std::string errorMessage;

    /**
     * Per-run `hard.stats.v1` snapshot (Json null unless the item
     * requested stats collection); serialized under "stats" only when
     * present, so stats-off batch JSON is byte-identical to pre-stats
     * output.
     */
    Json stats;

    /**
     * Per-run divergence attribution ({extra, missing, categories},
     * Json null unless the item requested explain collection);
     * serialized under "explain" only when present, so explain-off
     * batch JSON is byte-identical to pre-provenance output.
     */
    Json explain;

    /**
     * Detection-latency telemetry ({exposeCycle, byDetector:{name:
     * {detectCycle, latencyCycles}}}, Json null unless the item
     * requested latency collection); serialized under "latency" only
     * when present, so latency-off batch JSON is byte-identical to
     * prior output. exposeCycle/detectCycle are -1 when the race was
     * never exposed / never detected.
     */
    Json latency;

    bool ok() const { return outcome == "ok"; }
};

/**
 * Execute one effectiveness run unit. Deterministic in its arguments
 * and free of shared mutable state, so units may run on any thread.
 *
 * @param index Run index; index == num_runs selects the race-free run.
 * @param shared Precomputed shared-data map for @p workload / @p wp.
 * @param explain_hard When non-null, also record the run's trace and
 * replay it through the divergence classifier under this HARD shape,
 * filling EffectivenessRun::explain with the attribution summary.
 * @param mode ExecMode::Fast records the run once (or loads it from
 * @p trace_cache) and replays the trace through the detectors with no
 * timing simulation; reports, scores and explain attributions are
 * bit-identical to ExecMode::Cycle. Fast mode cannot collect per-run
 * machine stats (there is no machine on a warm hit) — requesting both
 * throws ConfigError.
 * @param trace_cache Optional content-addressed recording store
 * consulted/filled in fast mode; ignored in cycle mode. May be shared
 * across workers (TraceCache is thread-safe).
 * @param collect_latency Record detection-latency telemetry: an
 * ExposureObserver rides the run (never sampled) and each detector's
 * first matching report cycle fills EffectivenessRun::latency.
 */
EffectivenessRun runEffectivenessUnit(const std::string &workload,
                                      const WorkloadParams &wp,
                                      const SimConfig &sim,
                                      const DetectorFactory &factory,
                                      unsigned index, unsigned num_runs,
                                      std::uint64_t seed0,
                                      const SharedMap &shared,
                                      bool collect_stats = false,
                                      const HardConfig *explain_hard =
                                          nullptr,
                                      ExecMode mode = ExecMode::Cycle,
                                      TraceCache *trace_cache = nullptr,
                                      bool collect_latency = false);

/**
 * Fold per-run outcomes (in run-index order) into the aggregate
 * per-detector scores, exactly as the serial harness accumulates them.
 */
EffectivenessResult
foldEffectiveness(const std::vector<EffectivenessRun> &runs);

/**
 * Parallel runEffectiveness: identical semantics and results to the
 * serial harness entry point, with the num_runs + 1 run units spread
 * across @p pool.
 */
EffectivenessResult runEffectivenessParallel(const std::string &workload,
                                             const WorkloadParams &wp,
                                             const SimConfig &sim,
                                             const DetectorFactory &factory,
                                             unsigned num_runs,
                                             std::uint64_t seed0,
                                             RunPool &pool);

/** One batch row: a workload swept under one detector family. */
struct BatchItem
{
    /** Row label in results/JSON; defaults to @ref workload if empty. */
    std::string label;
    std::string workload;
    WorkloadParams wp;
    SimConfig sim;
    /** Detector set builder; required when @ref effectiveness. */
    DetectorFactory factory;
    /** Injected-bug runs (paper: 10). */
    unsigned runs = 10;
    /** Base injection seed; run r uses seed0 + r. */
    std::uint64_t seed0 = 1000;
    /** Run the Table 2-style effectiveness experiment. */
    bool effectiveness = true;
    /** Also measure Figure 8-style overhead. */
    bool overhead = false;
    /** Overhead variant: §3.4 directory metadata management. */
    bool directory = false;
    /** HARD configuration for the overhead measurement. */
    HardConfig hardCfg;
    /**
     * Embed per-run `hard.stats.v1` snapshots in the results: each
     * EffectivenessRun gains a "stats" block and the overhead unit
     * gains "baseStats"/"hardStats". Off by default — the stats-off
     * batch JSON is byte-identical to pre-stats output.
     */
    bool collectStats = false;
    /**
     * Record each effectiveness run's trace and replay it through the
     * divergence classifier (src/explain) under @ref hardCfg: each
     * EffectivenessRun gains an "explain" attribution block. Off by
     * default — explain-off batch JSON is byte-identical to
     * pre-provenance output.
     */
    bool collectExplain = false;
    /**
     * Record detection-latency telemetry: each injected
     * EffectivenessRun gains a "latency" block (exposure cycle +
     * per-detector first-matching-report cycle). Off by default —
     * latency-off batch JSON is byte-identical to prior output.
     */
    bool collectLatency = false;

    /**
     * Base of the exact single-run repro command reported for this
     * item's failures (e.g. "hardsim --workload=ocean --scale=0.2");
     * the driver appends the failing run's --inject seed. Synthesized
     * from @ref workload when empty.
     */
    std::string reproBase;

    /**
     * Execution mode for this item's effectiveness runs (overhead
     * units always run at cycle level — they measure timing). Fast
     * mode requires @ref collectStats off and is incompatible with
     * @ref overhead on the same item.
     */
    ExecMode mode = ExecMode::Cycle;
    /** Recording store for fast mode (not owned, may be null: fast
     * mode then records every unit without reuse). */
    TraceCache *traceCache = nullptr;
};

/** Results for one BatchItem, merged in run-index order. */
struct BatchItemResult
{
    std::string label;
    std::string workload;
    unsigned runs = 0;
    std::uint64_t seed0 = 0;
    /** Copied from BatchItem::reproBase (synthesized if empty). */
    std::string reproBase;

    /** Aggregate scores (empty unless item.effectiveness; failed runs
     * contribute nothing). */
    EffectivenessResult effectiveness;
    /** Per-run detail, indexed 0..runs (runs == the race-free run). */
    std::vector<EffectivenessRun> runDetail;

    bool haveOverhead = false;
    OverheadResult overhead;
    /** "" (not requested) | "ok" | failure label for the overhead
     * unit. */
    std::string overheadOutcome;
    std::string overheadErrorType;
    std::string overheadErrorMessage;
};

/** Failure-containment and resume knobs for runBatch. */
struct BatchOptions
{
    /**
     * Contain per-unit SimErrors: record the unit's outcome and keep
     * running the rest of the sweep instead of propagating the first
     * failure.
     */
    bool keepGoing = false;
    /**
     * With keepGoing: once this many units have failed, skip the
     * remaining unstarted units (recorded with outcome "skipped").
     * 0 = never stop.
     */
    unsigned maxFailures = 0;
    /** Journal completed units here (resume support); may be null. */
    BatchJournal *journal = nullptr;
    /**
     * Units already completed by a previous interrupted sweep
     * (loadJournal()): restored into their result slots without
     * re-running. May be null.
     */
    const JournalEntries *restored = nullptr;
    /**
     * Test hook called before a unit executes, OUTSIDE the keep-going
     * containment: a throwing hook kills the batch mid-flight the way
     * a crash would (used to test resume).
     */
    std::function<void(std::size_t item, std::int64_t run)> unitStartHook;
    /**
     * Unit-selection predicate (campaign shards: each shard runs only
     * its assigned slice of the unit space). Units for which this
     * returns false are marked "skipped" without executing, never
     * journaled (a resume or merge must treat them as still pending),
     * and their items' shared-map builds are elided when every
     * remaining unit is deselected. Null = run everything.
     */
    std::function<bool(std::size_t item, std::int64_t run)> unitFilter;
    /**
     * Per-unit host wall-clock budget in milliseconds, applied as
     * SimConfig::wallMsBudget to every unit whose item left it at 0
     * (0 = no budget). Catches host-level hangs that the in-simulation
     * watchdog and cycle budgets cannot see: both measure simulated
     * time, which stops advancing precisely when the host wedges. A
     * unit over budget fails with outcome "timeout", which under
     * keepGoing is contained and journaled like any other failure.
     * NOTE: unlike every other outcome, timeouts depend on host speed;
     * a journaled "timeout" may succeed when re-run on a faster
     * machine.
     */
    std::uint64_t unitTimeoutMs = 0;
};

/**
 * Run every item's independent units (effectiveness run units and
 * overhead measurements) across @p pool and return results in item
 * order. Results are bit-identical for any pool size and across
 * journal-resumed re-invocations.
 *
 * Without opts.keepGoing the first (lowest-unit-index) failure
 * propagates after the batch drains, as runIndexed does.
 */
std::vector<BatchItemResult> runBatch(const std::vector<BatchItem> &items,
                                      RunPool &pool,
                                      const BatchOptions &opts);

/** Legacy entry point: runBatch with default BatchOptions. */
std::vector<BatchItemResult> runBatch(const std::vector<BatchItem> &items,
                                      RunPool &pool);

/** @return the repro command for one unit of @p res: the item's
 * reproBase plus the failing run's --inject seed (injected runs) or
 * --overhead flag (run == -1). */
std::string reproCommand(const BatchItemResult &res, std::int64_t run);

/** @name JSON conversion (structured results for archiving/diffing)
 * @{
 */
Json toJson(const DetectorScore &score);
Json toJson(const OverheadResult &overhead);
Json toJson(const EffectivenessResult &result);
Json toJson(const EffectivenessRun &run);

DetectorScore detectorScoreFromJson(const Json &j);
OverheadResult overheadFromJson(const Json &j);
EffectivenessResult effectivenessFromJson(const Json &j);
EffectivenessRun effectivenessRunFromJson(const Json &j);

/**
 * Whole-batch document ("hard.batch.v2"): schema tag, one entry per
 * item with aggregate scores, per-run detail (including each run's
 * outcome) and overhead numbers, plus a top-level "errors" array
 * listing every failed unit with its error type, message and exact
 * single-run repro command. Deliberately independent of the worker
 * count, so dumps are byte-identical for any --jobs value.
 *
 * @param mode The sweep's execution mode: ExecMode::Fast adds a
 * "mode":"fast" field after the schema tag; ExecMode::Cycle (the
 * default) emits no mode field at all, keeping cycle-mode dumps
 * byte-identical to pre-fast-mode output.
 */
Json batchJson(const std::vector<BatchItemResult> &results,
               ExecMode mode = ExecMode::Cycle);

/**
 * The batch harness's own `hard.stats.v1` document: a "harness"
 * StatGroup counting items and unit outcomes (total/ok/failed/
 * skipped, effectiveness runs and overhead units) folded from
 * @p results. hardsim embeds it as "harnessStats" in stats-collecting
 * batch dumps.
 */
Json harnessStatsJson(const std::vector<BatchItemResult> &results);
/** @} */

} // namespace hard

#endif // HARD_HARNESS_BATCH_HH
