/**
 * @file
 * Experiment harness reproducing the paper's evaluation methodology
 * (§4/§5):
 *
 * - *Effectiveness* runs: for each workload, N runs each with one
 *   randomly injected race (an elided dynamic lock/unlock pair); every
 *   attached detector observes the *identical* execution, and a bug
 *   counts as detected when a detector's report overlaps the elided
 *   critical section's data. One additional race-free run measures
 *   false alarms, counted as distinct source sites.
 * - *Overhead* runs (Figure 8): the same workload is timed without
 *   HARD and with HARD's timing model enabled (candidate-set bus
 *   broadcasts + per-shared-access checking latency).
 */

#ifndef HARD_HARNESS_EXPERIMENT_HH
#define HARD_HARNESS_EXPERIMENT_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/hard_detector.hh"
#include "detectors/happens_before.hh"
#include "detectors/ideal_lockset.hh"
#include "sim/system.hh"
#include "workloads/injector.hh"
#include "workloads/registry.hh"

namespace hard
{

/**
 * Factory producing one fresh set of detectors per simulated run
 * (detectors are stateful and cannot be reused across runs).
 */
using DetectorFactory =
    std::function<std::vector<std::unique_ptr<RaceDetector>>()>;

/**
 * How a detection run executes.
 *
 * Cycle: the full cycle-level simulation with detectors attached as
 * live observers (the default, and the only mode that measures
 * timing/overhead).
 *
 * Fast: record the run once at cycle level (or fetch the recording
 * from a TraceCache) and replay the trace through the detectors only.
 * Detectors are deterministic functions of the event stream, so fast
 * reports are bit-identical to cycle reports
 * (tests/test_fast_mode_identity.cc); only per-run machine stats and
 * the HARD timing model are unavailable.
 */
enum class ExecMode
{
    Cycle,
    Fast,
};

/** @return "cycle" | "fast". */
const char *execModeName(ExecMode mode);

/** Parse "cycle" | "fast"; throws ConfigError on anything else. */
ExecMode parseExecMode(const std::string &name);

/** Per-detector outcome of an effectiveness experiment. */
struct DetectorScore
{
    /** Injected bugs detected (out of runsAttempted valid runs). */
    unsigned bugsDetected = 0;
    /** Runs where injection succeeded. */
    unsigned runsAttempted = 0;
    /** Distinct-source-site alarms in the race-free run. */
    std::size_t falseAlarms = 0;
    /** Dynamic reports in the race-free run (pre-deduplication). */
    std::uint64_t dynamicReports = 0;
};

/** Result of runEffectiveness: detector name -> score. */
using EffectivenessResult = std::map<std::string, DetectorScore>;

/**
 * Run the paper's effectiveness experiment on one workload.
 *
 * @param workload Registered workload name.
 * @param wp Workload sizing parameters.
 * @param sim Simulator configuration (hardTiming must be disabled so
 * every detector sees identical executions).
 * @param factory Detector set builder, invoked once per run.
 * @param num_runs Number of injected-bug runs (paper: 10).
 * @param seed0 Base seed; run r injects with seed0 + r.
 */
EffectivenessResult runEffectiveness(const std::string &workload,
                                     const WorkloadParams &wp,
                                     const SimConfig &sim,
                                     const DetectorFactory &factory,
                                     unsigned num_runs,
                                     std::uint64_t seed0);

/** Result of one overhead measurement (Figure 8). */
struct OverheadResult
{
    Cycle baseCycles = 0;
    Cycle hardCycles = 0;
    /** (hard - base) / base * 100. */
    double overheadPct = 0.0;
    /** Candidate-set broadcasts performed by HARD (§3.4). */
    std::uint64_t metaBroadcasts = 0;
    /** Bus bytes moved for data vs for HARD metadata. */
    std::uint64_t dataBytes = 0;
    std::uint64_t metaBytes = 0;
    /**
     * Full `hard.stats.v1` snapshots of the baseline and HARD runs
     * (Json null unless stats collection was requested) — the bench
     * tables regenerate their traffic columns from these.
     */
    Json baseStats;
    Json hardStats;
};

/**
 * Measure HARD's execution-time overhead on one workload (Figure 8):
 * a baseline timing run without HARD vs a run with the HARD timing
 * model enabled and a HardDetector charging broadcasts to the bus.
 *
 * @param collect_stats Embed per-run `hard.stats.v1` snapshots in the
 * result (baseStats/hardStats).
 */
OverheadResult measureOverhead(const std::string &workload,
                               const WorkloadParams &wp,
                               const SimConfig &sim,
                               const HardConfig &hard_cfg,
                               bool collect_stats = false);

/**
 * Like measureOverhead, but with the §3.4 directory-variant timing
 * model (per-shared-access metadata round-trips, no broadcasts).
 */
OverheadResult measureOverheadDirectory(const std::string &workload,
                                        const WorkloadParams &wp,
                                        const SimConfig &sim,
                                        const HardConfig &hard_cfg,
                                        bool collect_stats = false);

/**
 * Convenience: run @p prog once with @p detectors attached.
 * @return the simulator run summary.
 */
RunResult runWithDetectors(const Program &prog, const SimConfig &sim,
                           const std::vector<RaceDetector *> &detectors);

/**
 * As above, but additionally snapshot the machine's full stat
 * registry (including each detector's group) into @p stats_out as a
 * `hard.stats.v1` document when @p stats_out is non-null.
 */
RunResult runWithDetectors(const Program &prog, const SimConfig &sim,
                           const std::vector<RaceDetector *> &detectors,
                           Json *stats_out);

/**
 * As above, with additional non-detector observers (e.g. a
 * TraceRecorder) attached to the same run after the detectors.
 */
RunResult runWithDetectors(const Program &prog, const SimConfig &sim,
                           const std::vector<RaceDetector *> &detectors,
                           Json *stats_out,
                           const std::vector<AccessObserver *> &extra);

/**
 * @return true if @p sink holds a report that corresponds to the
 * injected bug: its byte range overlaps the elided critical section's
 * data AND it was reported at a source site that really accesses that
 * data (@p true_sites) — so a coincidental false-sharing alarm on the
 * same cache line does not count as detecting the bug.
 */
bool detectedInjection(const ReportSink &sink, const Injection &inj,
                       const std::set<SiteId> &true_sites);

/** @return every site in @p prog that accesses data overlapping the
 * injection's ranges (the legitimate reporting sites for the bug). */
std::set<SiteId> sitesTouching(const Program &prog, const Injection &inj);

/**
 * @return the cycle of the earliest report in @p sink corresponding to
 * the injected bug (the same matching rule as detectedInjection), or
 * -1 when the bug went undetected. Detection latency is this minus the
 * run's exposure cycle.
 */
std::int64_t firstDetectionCycle(const ReportSink &sink,
                                 const Injection &inj,
                                 const std::set<SiteId> &true_sites);

/**
 * Passive observer recording the cycle at which an injected race is
 * first *exposed*: the first data access that overlaps the injection's
 * byte ranges from a site that really touches them. Detection-latency
 * telemetry measures time from this cycle to a detector's first
 * matching report.
 */
class ExposureObserver : public AccessObserver
{
  public:
    ExposureObserver(const Injection &inj,
                     const std::set<SiteId> &true_sites)
        : inj_(inj), trueSites_(true_sites)
    {
    }

    void onRead(const MemEvent &ev) override { observe(ev); }
    void onWrite(const MemEvent &ev) override { observe(ev); }

    /** Cycle of the first exposing access, or -1 if none occurred. */
    std::int64_t exposeCycle() const { return exposeCycle_; }

  private:
    void
    observe(const MemEvent &ev)
    {
        if (exposeCycle_ >= 0)
            return;
        if (!inj_.overlaps(ev.addr, ev.size))
            return;
        if (!trueSites_.empty() && trueSites_.count(ev.site) == 0)
            return;
        exposeCycle_ = static_cast<std::int64_t>(ev.at);
    }

    const Injection &inj_;
    const std::set<SiteId> &trueSites_;
    std::int64_t exposeCycle_ = -1;
};

/** @return the default (Table 1) simulator configuration. */
SimConfig defaultSimConfig();

/** @return the paper's default detector quartet for Table 2:
 * HARD(default), HARD(ideal = exact unbounded lockset),
 * happens-before(default), happens-before(ideal). */
DetectorFactory table2Detectors();

} // namespace hard

#endif // HARD_HARNESS_EXPERIMENT_HH
