#include "harness/journal.hh"

#include <csignal>

#include "common/error.hh"
#include "common/logging.hh"
#include "telemetry/profile.hh"

namespace hard
{

const char *const kJournalSchema = "hard.journal.v1";

BatchJournal::BatchJournal(const std::string &path,
                           const std::string &signature, bool resume)
    : path_(path), file_(std::fopen(path.c_str(), resume ? "ab" : "wb"))
{
    hard_throw_if(file_ == nullptr, ConfigError,
                  "journal: cannot open '%s' for writing", path.c_str());
    if (!resume) {
        Json meta = Json::object();
        meta.set("schema", kJournalSchema);
        meta.set("signature", signature);
        std::string line = meta.dump();
        line.push_back('\n');
        std::fwrite(line.data(), 1, line.size(), file_);
        std::fflush(file_);
    }
}

BatchJournal::~BatchJournal()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

void
BatchJournal::append(const JournalKey &key, const Json &payload)
{
    ScopedPhase phase("journal.append");
    Json rec = Json::object();
    rec.set("item", static_cast<std::uint64_t>(key.first));
    rec.set("run", static_cast<std::int64_t>(key.second));
    rec.set("payload", payload);
    std::string line = rec.dump();
    line.push_back('\n');
    std::function<void(const JournalKey &, const Json &)> hook;
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (killKey_ && *killKey_ == key) {
            // Injected crash: leave exactly the torn half-line a
            // process dying mid-fwrite would, then die without running
            // any destructor or exit handler.
            std::fwrite(line.data(), 1, line.size() / 2, file_);
            std::fflush(file_);
            ::raise(SIGKILL);
        }
        std::fwrite(line.data(), 1, line.size(), file_);
        // Flush per record: an interrupted sweep must find every unit
        // that completed before the kill.
        std::fflush(file_);
        hook = appendHook_;
    }
    profileCount("journal.bytesWritten", line.size());
    if (hook)
        hook(key, payload);
}

void
BatchJournal::setAppendHook(
    std::function<void(const JournalKey &, const Json &)> hook)
{
    std::lock_guard<std::mutex> lk(mu_);
    appendHook_ = std::move(hook);
}

void
BatchJournal::killMidAppend(const JournalKey &key)
{
    std::lock_guard<std::mutex> lk(mu_);
    killKey_ = key;
}

JournalEntries
loadJournal(const std::string &path, const std::string &signature)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    hard_throw_if(f == nullptr, ConfigError,
                  "journal: cannot open '%s' (nothing to resume from)",
                  path.c_str());
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    JournalEntries entries;
    bool saw_header = false;
    std::size_t pos = 0;
    std::size_t lineno = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos) {
            // Trailing partial line: the writer died mid-append (or
            // mid-header). Every complete record above it is good.
            warn("journal: '%s': ignoring truncated final line "
                 "(interrupted write)",
                 path.c_str());
            break;
        }
        std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        ++lineno;
        if (line.empty())
            continue;
        std::string err;
        Json rec = Json::parse(line, &err);
        if (!err.empty() || !rec.isObject()) {
            // A torn record mid-file: a crash between fwrite and
            // flush can leave a mangled line that later appends then
            // wrote past. Skip it; intact records on either side are
            // still trustworthy because each was flushed whole.
            warn("journal: '%s': skipping torn record at line %zu "
                 "(crash mid-append?)",
                 path.c_str(), lineno);
            continue;
        }
        if (!saw_header) {
            hard_throw_if(!rec.has("schema") ||
                              rec["schema"].asString() != kJournalSchema,
                          ConfigError,
                          "journal: '%s' is not a %s file", path.c_str(),
                          kJournalSchema);
            hard_throw_if(
                !rec.has("signature") ||
                    rec["signature"].asString() != signature,
                ConfigError,
                "journal: '%s' was written by a different sweep "
                "(signature mismatch); re-run without --resume",
                path.c_str());
            saw_header = true;
            continue;
        }
        if (!rec.has("item") || !rec.has("run") || !rec.has("payload")) {
            warn("journal: '%s': skipping incomplete record at line "
                 "%zu (crash mid-append?)",
                 path.c_str(), lineno);
            continue;
        }
        JournalKey key{static_cast<std::size_t>(rec["item"].asUint()),
                       rec["run"].asInt()};
        entries[key] = rec["payload"];
    }
    hard_throw_if(!saw_header, ConfigError,
                  "journal: '%s' has no valid header", path.c_str());
    return entries;
}

std::string
journalPathFor(const std::string &jsonPath)
{
    const std::string suffix = ".json";
    std::string stem = jsonPath;
    if (stem.size() > suffix.size() &&
        stem.compare(stem.size() - suffix.size(), suffix.size(),
                     suffix) == 0)
        stem.resize(stem.size() - suffix.size());
    return stem + ".journal.jsonl";
}

} // namespace hard
