#include "harness/journal.hh"

#include "common/error.hh"

namespace hard
{

const char *const kJournalSchema = "hard.journal.v1";

BatchJournal::BatchJournal(const std::string &path,
                           const std::string &signature, bool resume)
    : path_(path), file_(std::fopen(path.c_str(), resume ? "ab" : "wb"))
{
    hard_throw_if(file_ == nullptr, ConfigError,
                  "journal: cannot open '%s' for writing", path.c_str());
    if (!resume) {
        Json meta = Json::object();
        meta.set("schema", kJournalSchema);
        meta.set("signature", signature);
        std::string line = meta.dump();
        line.push_back('\n');
        std::fwrite(line.data(), 1, line.size(), file_);
        std::fflush(file_);
    }
}

BatchJournal::~BatchJournal()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

void
BatchJournal::append(const JournalKey &key, const Json &payload)
{
    Json rec = Json::object();
    rec.set("item", static_cast<std::uint64_t>(key.first));
    rec.set("run", static_cast<std::int64_t>(key.second));
    rec.set("payload", payload);
    std::string line = rec.dump();
    line.push_back('\n');
    std::lock_guard<std::mutex> lk(mu_);
    std::fwrite(line.data(), 1, line.size(), file_);
    // Flush per record: an interrupted sweep must find every unit
    // that completed before the kill.
    std::fflush(file_);
}

JournalEntries
loadJournal(const std::string &path, const std::string &signature)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    hard_throw_if(f == nullptr, ConfigError,
                  "journal: cannot open '%s' (nothing to resume from)",
                  path.c_str());
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    JournalEntries entries;
    bool saw_header = false;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            break; // trailing partial line from an interrupted write
        std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty())
            continue;
        std::string err;
        Json rec = Json::parse(line, &err);
        if (!err.empty() || !rec.isObject())
            break; // torn record: everything before it is still good
        if (!saw_header) {
            hard_throw_if(!rec.has("schema") ||
                              rec["schema"].asString() != kJournalSchema,
                          ConfigError,
                          "journal: '%s' is not a %s file", path.c_str(),
                          kJournalSchema);
            hard_throw_if(
                !rec.has("signature") ||
                    rec["signature"].asString() != signature,
                ConfigError,
                "journal: '%s' was written by a different sweep "
                "(signature mismatch); re-run without --resume",
                path.c_str());
            saw_header = true;
            continue;
        }
        if (!rec.has("item") || !rec.has("run") || !rec.has("payload"))
            break;
        JournalKey key{static_cast<std::size_t>(rec["item"].asUint()),
                       rec["run"].asInt()};
        entries[key] = rec["payload"];
    }
    hard_throw_if(!saw_header, ConfigError,
                  "journal: '%s' has no valid header", path.c_str());
    return entries;
}

std::string
journalPathFor(const std::string &jsonPath)
{
    const std::string suffix = ".json";
    std::string stem = jsonPath;
    if (stem.size() > suffix.size() &&
        stem.compare(stem.size() - suffix.size(), suffix.size(),
                     suffix) == 0)
        stem.resize(stem.size() - suffix.size());
    return stem + ".journal.jsonl";
}

} // namespace hard
