#include "harness/batch.hh"

#include <atomic>
#include <memory>
#include <optional>

#include "common/error.hh"
#include "common/logging.hh"
#include "explain/classifier.hh"
#include "explain/explain_json.hh"
#include "telemetry/profile.hh"
#include "telemetry/stat_registry.hh"
#include "trace/record.hh"
#include "trace/recorder.hh"
#include "trace/replayer.hh"

namespace hard
{

EffectivenessRun
runEffectivenessUnit(const std::string &workload, const WorkloadParams &wp,
                     const SimConfig &sim, const DetectorFactory &factory,
                     unsigned index, unsigned num_runs,
                     std::uint64_t seed0, const SharedMap &shared,
                     bool collect_stats, const HardConfig *explain_hard,
                     ExecMode mode, TraceCache *trace_cache,
                     bool collect_latency)
{
    hard_throw_if(mode == ExecMode::Fast && collect_stats, ConfigError,
                  "fast mode cannot collect per-run machine stats "
                  "(a warm cache hit simulates no machine)");

    EffectivenessRun out;
    out.index = index;
    out.raceFree = index >= num_runs;

    Program prog = buildWorkload(workload, wp);

    Injection inj;
    std::set<SiteId> true_sites;
    if (!out.raceFree) {
        inj = injectRace(prog, seed0 + index, &shared);
        if (!inj.valid) {
            warn("%s: run %u: no injectable critical section",
                 workload.c_str(), index);
            return out;
        }
        out.injectionValid = true;
        true_sites = sitesTouching(prog, inj);
    }

    auto detectors = factory();
    std::vector<RaceDetector *> raw;
    raw.reserve(detectors.size());
    for (auto &d : detectors)
        raw.push_back(d.get());

    // Exposure probe for detection-latency telemetry: rides the run
    // as a plain observer (never behind the sampling wrapper — it
    // defines the clock the sampled detectors are measured against).
    std::unique_ptr<ExposureObserver> exposure;
    if (collect_latency && !out.raceFree && out.injectionValid)
        exposure = std::make_unique<ExposureObserver>(inj, true_sites);

    // Finite safety net: a batch unit must end in CycleBudgetError
    // rather than hang the whole sweep, even with the watchdog off.
    // The default budget is far above any legitimate run, so healthy
    // results are unchanged. The resolved config also feeds the cache
    // key, so a budget change re-records rather than replaying a
    // trace from a different budget.
    SimConfig cfg = sim;
    if (cfg.maxCycles == 0)
        cfg.maxCycles = defaultCycleBudget(prog);

    if (mode == ExecMode::Fast) {
        // Record once (or fetch the recording), then drive the
        // detectors from the trace alone. Failed record runs throw
        // out of here exactly like failed live runs, and are never
        // stored.
        const TraceKey key = makeRunKey(
            workload, wp, cfg,
            out.raceFree
                ? -1
                : static_cast<std::int64_t>(seed0 + index));
        // With the profiler on, each detector is wrapped in a
        // forwarding TimedObserver: one joint replay (identical event
        // stream, identical cache counters) still yields a
        // per-detector dispatch-cost breakdown.
        std::vector<std::unique_ptr<TimedObserver>> timed;
        std::vector<AccessObserver *> observers;
        observers.reserve(raw.size());
        if (Profiler::active() != nullptr) {
            timed.reserve(raw.size());
            for (RaceDetector *d : raw) {
                timed.push_back(std::make_unique<TimedObserver>(
                    d, "batch.unit.detector." + d->name()));
                observers.push_back(timed.back().get());
            }
        } else {
            observers.assign(raw.begin(), raw.end());
        }
        // Sampling gates only the detectors (and their timing
        // wrappers); the exposure probe sees the full stream.
        std::vector<std::unique_ptr<SamplingObserver>> sampled;
        if (cfg.sampling.active()) {
            sampled.reserve(observers.size());
            for (AccessObserver *&obs : observers) {
                sampled.push_back(std::make_unique<SamplingObserver>(
                    *obs, cfg.sampling));
                obs = sampled.back().get();
            }
        }
        if (exposure)
            observers.push_back(exposure.get());
        // Warm hits stream packed events straight from the mapped
        // container into the detectors (identical dispatch, no event
        // vector). Only the explain path needs the materialized
        // trace, so only it goes through lookup(); a replayCached()
        // miss already counted, so the miss path records directly
        // without re-probing.
        bool replayed = false;
        if (trace_cache != nullptr && explain_hard == nullptr) {
            ScopedPhase phase("batch.unit.replay");
            replayed =
                trace_cache->replayCached(key, observers).has_value();
        }
        if (!replayed) {
            Trace trace;
            std::optional<Trace> cached;
            if (trace_cache != nullptr && explain_hard != nullptr)
                cached = trace_cache->lookup(key);
            if (cached) {
                trace = std::move(*cached);
            } else {
                {
                    ScopedPhase phase("batch.unit.record");
                    trace = recordRun(prog, cfg);
                }
                if (trace_cache != nullptr)
                    trace_cache->store(key, trace);
            }
            {
                ScopedPhase phase("batch.unit.replay");
                replayTrace(trace, observers);
            }
            if (explain_hard != nullptr) {
                ScopedPhase phase("batch.unit.explain");
                ExplainConfig ec;
                ec.subject = ExplainConfig::Subject::Hard;
                ec.hard = *explain_hard;
                out.explain = attributionJson(explainTrace(trace, ec));
            }
        }
        for (RaceDetector *d : raw)
            d->finalize();
    } else {
        // Explain collection rides a TraceRecorder alongside the
        // detectors; the recorder is a pure observer, so detector
        // results are unchanged whether or not it is attached.
        std::unique_ptr<TraceRecorder> recorder;
        std::vector<AccessObserver *> extra;
        if (explain_hard != nullptr) {
            recorder = std::make_unique<TraceRecorder>(prog);
            extra.push_back(recorder.get());
        }
        if (exposure)
            extra.push_back(exposure.get());
        {
            ScopedPhase phase("batch.unit.simulate");
            runWithDetectors(prog, cfg, raw,
                             collect_stats ? &out.stats : nullptr,
                             extra);
        }
        if (recorder) {
            ScopedPhase phase("batch.unit.explain");
            ExplainConfig ec;
            ec.subject = ExplainConfig::Subject::Hard;
            ec.hard = *explain_hard;
            out.explain =
                attributionJson(explainTrace(recorder->take(), ec));
        }
    }

    for (auto &d : detectors) {
        RunOutcome &o = out.byDetector[d->name()];
        if (!out.raceFree)
            o.detected = detectedInjection(d->sink(), inj, true_sites);
        o.sites = d->sink().sites();
        o.dynamicReports = d->sink().dynamicCount();
    }

    if (exposure) {
        const std::int64_t expose = exposure->exposeCycle();
        Json lat = Json::object();
        lat.set("exposeCycle", expose);
        Json by = Json::object();
        for (auto &d : detectors) {
            const std::int64_t dc =
                firstDetectionCycle(d->sink(), inj, true_sites);
            Json e = Json::object();
            e.set("detectCycle", dc);
            if (dc >= 0 && expose >= 0) {
                // A coarse-granularity report can precede the precise
                // exposure access (same true site, earlier overlapping
                // granule touch); clamp so latency is never negative.
                e.set("latencyCycles",
                      dc > expose ? dc - expose : std::int64_t{0});
            }
            by.set(d->name(), std::move(e));
        }
        lat.set("byDetector", std::move(by));
        out.latency = std::move(lat);
    }
    return out;
}

EffectivenessResult
foldEffectiveness(const std::vector<EffectivenessRun> &runs)
{
    EffectivenessResult result;
    for (const EffectivenessRun &run : runs) {
        if (!run.ok())
            continue; // failed/skipped units contribute nothing
        if (run.raceFree) {
            for (const auto &[name, o] : run.byDetector) {
                DetectorScore &score = result[name];
                score.falseAlarms = o.sites.size();
                score.dynamicReports = o.dynamicReports;
            }
        } else {
            if (!run.injectionValid)
                continue;
            for (const auto &[name, o] : run.byDetector) {
                DetectorScore &score = result[name];
                ++score.runsAttempted;
                if (o.detected)
                    ++score.bugsDetected;
            }
        }
    }
    return result;
}

EffectivenessResult
runEffectivenessParallel(const std::string &workload,
                         const WorkloadParams &wp, const SimConfig &sim,
                         const DetectorFactory &factory, unsigned num_runs,
                         std::uint64_t seed0, RunPool &pool)
{
    hard_throw_if(sim.hardTiming.enabled, ConfigError,
                  "effectiveness runs must not enable the HARD timing "
                  "model (all detectors must see identical executions)");

    // Shared-data map (computed once; injection does not change the
    // access set, only the locking).
    const SharedMap shared(buildWorkload(workload, wp));

    std::vector<EffectivenessRun> runs(num_runs + 1);
    pool.runIndexed(num_runs + 1, [&](std::size_t i) {
        runs[i] = runEffectivenessUnit(workload, wp, sim, factory,
                                       static_cast<unsigned>(i), num_runs,
                                       seed0, shared);
    });
    return foldEffectiveness(runs);
}

namespace
{

/** Fill one run slot from a classified failure. */
void
markRunFailed(EffectivenessRun &run, unsigned index, unsigned num_runs,
              const std::string &outcome, const std::string &type,
              const std::string &message)
{
    run = EffectivenessRun{};
    run.index = index;
    run.raceFree = index >= num_runs;
    run.outcome = outcome;
    run.errorType = type;
    run.errorMessage = message;
}

/** Serialize an overhead unit's result (ok or failed) for journal
 * and batch JSON. */
Json
overheadPayload(const BatchItemResult &res)
{
    Json j = Json::object();
    j.set("outcome",
          res.overheadOutcome.empty() ? "ok" : res.overheadOutcome);
    if (res.haveOverhead) {
        // Named: members() references the Json's own storage, and a
        // temporary dies before the loop body under C++20 lifetimes.
        const Json oh = toJson(res.overhead);
        for (const auto &[k, v] : oh.members())
            j.set(k, v);
    } else {
        j.set("errorType", res.overheadErrorType);
        j.set("errorMessage", res.overheadErrorMessage);
    }
    return j;
}

/** Restore an overhead unit from its journal/JSON payload. */
void
restoreOverhead(BatchItemResult &res, const Json &payload)
{
    res.overheadOutcome = payload["outcome"].asString();
    if (res.overheadOutcome == "ok") {
        res.overhead = overheadFromJson(payload);
        res.haveOverhead = true;
    } else {
        res.overheadErrorType = payload["errorType"].asString();
        res.overheadErrorMessage = payload["errorMessage"].asString();
    }
}

} // namespace

std::vector<BatchItemResult>
runBatch(const std::vector<BatchItem> &items, RunPool &pool,
         const BatchOptions &opts)
{
    for (const BatchItem &item : items) {
        hard_throw_if(item.effectiveness && !item.factory, ConfigError,
                      "batch item '%s' has no detector factory",
                      item.workload.c_str());
        hard_throw_if(item.effectiveness && item.sim.hardTiming.enabled,
                      ConfigError,
                      "effectiveness runs must not enable the HARD "
                      "timing model (all detectors must see identical "
                      "executions)");
        hard_throw_if(item.mode == ExecMode::Fast && item.overhead,
                      ConfigError,
                      "batch item '%s': overhead measurement needs "
                      "cycle-level timing; --mode=fast cannot provide "
                      "it",
                      item.workload.c_str());
        hard_throw_if(item.mode == ExecMode::Fast && item.collectStats,
                      ConfigError,
                      "batch item '%s': fast mode cannot collect "
                      "per-run machine stats",
                      item.workload.c_str());
    }

    std::vector<BatchItemResult> results(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
        results[i].label = items[i].label.empty() ? items[i].workload
                                                  : items[i].label;
        results[i].workload = items[i].workload;
        results[i].runs = items[i].runs;
        results[i].seed0 = items[i].seed0;
        results[i].reproBase = items[i].reproBase.empty()
            ? "hardsim --workload=" + items[i].workload
            : items[i].reproBase;
        if (items[i].effectiveness)
            results[i].runDetail.resize(items[i].runs + 1);
    }

    // Failure budget shared by all workers. Restored failures count:
    // resuming must not re-earn headroom the interrupted sweep spent.
    std::atomic<unsigned> failures{0};

    // Restore journaled units from a previous interrupted sweep.
    // Units are deterministic, so a restored record — even a failed
    // one — is exactly what re-running would produce.
    std::vector<std::vector<bool>> restored_run(items.size());
    std::vector<bool> restored_overhead(items.size(), false);
    for (std::size_t i = 0; i < items.size(); ++i)
        restored_run[i].assign(items[i].runs + 1, false);
    if (opts.restored != nullptr) {
        for (const auto &[key, payload] : *opts.restored) {
            const auto [i, r] = key;
            if (i >= items.size())
                continue;
            if (r == -1 && items[i].overhead) {
                restoreOverhead(results[i], payload);
                restored_overhead[i] = true;
                if (results[i].overheadOutcome != "ok")
                    ++failures;
            } else if (r >= 0 && items[i].effectiveness &&
                       r <= static_cast<std::int64_t>(items[i].runs)) {
                EffectivenessRun run = effectivenessRunFromJson(payload);
                results[i].runDetail[static_cast<std::size_t>(r)] = run;
                restored_run[i][static_cast<std::size_t>(r)] = true;
                if (!run.ok())
                    ++failures;
            }
        }
    }

    // Deselect units outside opts.unitFilter (campaign shards): mark
    // them "skipped" up front without running or journaling them, so
    // a later merge/resume sees them as still pending.
    auto unit_selected = [&opts](std::size_t i, std::int64_t r) {
        return !opts.unitFilter || opts.unitFilter(i, r);
    };
    std::vector<std::vector<bool>> filtered_run(items.size());
    std::vector<bool> filtered_overhead(items.size(), false);
    for (std::size_t i = 0; i < items.size(); ++i) {
        filtered_run[i].assign(items[i].runs + 1, false);
        if (opts.unitFilter == nullptr)
            continue;
        if (items[i].effectiveness)
            for (unsigned r = 0; r <= items[i].runs; ++r) {
                if (restored_run[i][r] ||
                    unit_selected(i, static_cast<std::int64_t>(r)))
                    continue;
                filtered_run[i][r] = true;
                markRunFailed(results[i].runDetail[r], r, items[i].runs,
                              "skipped", "", "");
            }
        if (items[i].overhead && !restored_overhead[i] &&
            !unit_selected(i, -1)) {
            filtered_overhead[i] = true;
            results[i].overheadOutcome = "skipped";
        }
    }

    // Phase 1: shared-data maps, one per effectiveness item (each is
    // itself a workload build + scan, so worth parallelizing). A map
    // that fails to build (bad workload name, malformed program)
    // fails every one of the item's runs identically; under
    // keep-going those runs are recorded and journaled as failed.
    std::vector<std::unique_ptr<SharedMap>> shared(items.size());
    std::vector<std::size_t> eff_items;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (!items[i].effectiveness)
            continue;
        bool all_settled = true;
        for (unsigned r = 0; r <= items[i].runs; ++r)
            all_settled = all_settled &&
                (restored_run[i][r] || filtered_run[i][r]);
        if (!all_settled)
            eff_items.push_back(i);
    }
    std::vector<std::exception_ptr> shared_errs =
        pool.runCollect(eff_items.size(), [&](std::size_t k) {
            std::size_t i = eff_items[k];
            shared[i] = std::make_unique<SharedMap>(
                buildWorkload(items[i].workload, items[i].wp));
        });
    for (std::size_t k = 0; k < eff_items.size(); ++k) {
        if (!shared_errs[k])
            continue;
        if (!opts.keepGoing)
            std::rethrow_exception(shared_errs[k]);
        std::size_t i = eff_items[k];
        std::string type, message;
        std::string outcome =
            classifyException(shared_errs[k], &type, &message);
        for (unsigned r = 0; r <= items[i].runs; ++r) {
            if (restored_run[i][r] || filtered_run[i][r])
                continue;
            markRunFailed(results[i].runDetail[r], r, items[i].runs,
                          outcome, type, message);
            ++failures;
            if (opts.journal != nullptr)
                opts.journal->append(
                    {i, static_cast<std::int64_t>(r)},
                    toJson(results[i].runDetail[r]));
        }
    }

    // Phase 2: flatten every independent run unit and fan out. Each
    // unit writes only its preallocated slot, so merged results are
    // ordered by (item, run index) no matter which worker finishes
    // first.
    struct Unit
    {
        std::size_t item;
        /** Run index, or -1 for the item's overhead measurement. */
        std::int64_t run;
    };
    std::vector<Unit> units;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (items[i].effectiveness && shared[i] != nullptr)
            for (unsigned r = 0; r <= items[i].runs; ++r)
                if (!restored_run[i][r] && !filtered_run[i][r])
                    units.push_back(
                        {i, static_cast<std::int64_t>(r)});
        if (items[i].overhead && !restored_overhead[i] &&
            !filtered_overhead[i])
            units.push_back({i, -1});
    }
    std::vector<std::exception_ptr> unit_errs =
        pool.runCollect(units.size(), [&](std::size_t u) {
            const Unit &unit = units[u];
            const BatchItem &item = items[unit.item];
            BatchItemResult &res = results[unit.item];

            // The hook runs outside the containment below: a throwing
            // hook aborts the batch the way a crash would, leaving
            // this unit un-journaled (the resume tests rely on it).
            if (opts.unitStartHook)
                opts.unitStartHook(unit.item, unit.run);

            const bool over_budget = opts.keepGoing &&
                opts.maxFailures != 0 &&
                failures.load() >= opts.maxFailures;
            std::string outcome = "ok", type, message;
            // With a journal, divert this worker's warn()/inform()
            // lines into the unit's journal record instead of
            // interleaving on stderr (setQuiet() still silences them
            // before the capture sees anything).
            std::optional<ScopedLogCapture> capture;
            if (opts.journal != nullptr)
                capture.emplace();
            if (over_budget) {
                outcome = "skipped";
            } else {
                // Per-unit wall-clock budget: an item-level
                // wallMsBudget wins; otherwise the batch-wide
                // opts.unitTimeoutMs applies. Not part of the
                // fast-mode cache key either way.
                SimConfig unit_sim = item.sim;
                if (opts.unitTimeoutMs != 0 &&
                    unit_sim.wallMsBudget == 0)
                    unit_sim.wallMsBudget = opts.unitTimeoutMs;
                try {
                    if (unit.run == -1) {
                        res.overhead = item.directory
                            ? measureOverheadDirectory(item.workload,
                                                       item.wp, unit_sim,
                                                       item.hardCfg,
                                                       item.collectStats)
                            : measureOverhead(item.workload, item.wp,
                                              unit_sim, item.hardCfg,
                                              item.collectStats);
                        res.haveOverhead = true;
                    } else {
                        res.runDetail[static_cast<std::size_t>(
                            unit.run)] =
                            runEffectivenessUnit(
                                item.workload, item.wp, unit_sim,
                                item.factory,
                                static_cast<unsigned>(unit.run),
                                item.runs, item.seed0,
                                *shared[unit.item], item.collectStats,
                                item.collectExplain ? &item.hardCfg
                                                    : nullptr,
                                item.mode, item.traceCache,
                                item.collectLatency);
                    }
                } catch (...) {
                    if (!opts.keepGoing)
                        throw;
                    outcome = classifyException(std::current_exception(),
                                                &type, &message);
                    ++failures;
                }
            }

            if (unit.run == -1) {
                res.overheadOutcome = outcome;
                res.overheadErrorType = type;
                res.overheadErrorMessage = message;
            } else if (outcome != "ok") {
                markRunFailed(
                    res.runDetail[static_cast<std::size_t>(unit.run)],
                    static_cast<unsigned>(unit.run), item.runs, outcome,
                    type, message);
            }
            // Journal everything that actually ran; skipped units are
            // left out so a resume executes them. Captured log lines
            // ride along in the journal record only — they never enter
            // batchJson, which stays byte-identical with logging on.
            if (opts.journal != nullptr && outcome != "skipped") {
                Json payload = unit.run == -1
                    ? overheadPayload(res)
                    : toJson(res.runDetail[static_cast<std::size_t>(
                          unit.run)]);
                if (capture && !capture->lines().empty()) {
                    Json log = Json::array();
                    for (const std::string &line : capture->lines())
                        log.push(line);
                    payload.set("log", std::move(log));
                }
                opts.journal->append({unit.item, unit.run},
                                     std::move(payload));
            }
        });
    for (std::exception_ptr &err : unit_errs)
        if (err)
            std::rethrow_exception(err);

    // Phase 3: fold per-run outcomes in run-index order.
    for (std::size_t i = 0; i < items.size(); ++i)
        if (items[i].effectiveness)
            results[i].effectiveness =
                foldEffectiveness(results[i].runDetail);

    return results;
}

std::vector<BatchItemResult>
runBatch(const std::vector<BatchItem> &items, RunPool &pool)
{
    return runBatch(items, pool, BatchOptions{});
}

std::string
reproCommand(const BatchItemResult &res, std::int64_t run)
{
    if (run == -1)
        return res.reproBase + " --overhead";
    if (run < static_cast<std::int64_t>(res.runs))
        return res.reproBase + " --inject=" +
            std::to_string(res.seed0 + static_cast<std::uint64_t>(run));
    return res.reproBase; // the race-free run
}

Json
toJson(const DetectorScore &score)
{
    Json j = Json::object();
    j.set("bugsDetected", score.bugsDetected);
    j.set("runsAttempted", score.runsAttempted);
    j.set("falseAlarms", static_cast<std::uint64_t>(score.falseAlarms));
    j.set("dynamicReports", score.dynamicReports);
    return j;
}

DetectorScore
detectorScoreFromJson(const Json &j)
{
    DetectorScore s;
    s.bugsDetected = static_cast<unsigned>(j["bugsDetected"].asUint());
    s.runsAttempted = static_cast<unsigned>(j["runsAttempted"].asUint());
    s.falseAlarms = static_cast<std::size_t>(j["falseAlarms"].asUint());
    s.dynamicReports = j["dynamicReports"].asUint();
    return s;
}

Json
toJson(const OverheadResult &overhead)
{
    Json j = Json::object();
    j.set("baseCycles", overhead.baseCycles);
    j.set("hardCycles", overhead.hardCycles);
    j.set("overheadPct", overhead.overheadPct);
    j.set("metaBroadcasts", overhead.metaBroadcasts);
    j.set("dataBytes", overhead.dataBytes);
    j.set("metaBytes", overhead.metaBytes);
    // Optional stats snapshots: omitted (not null) when collection was
    // off, so stats-off dumps match pre-stats output byte for byte.
    if (!overhead.baseStats.isNull())
        j.set("baseStats", overhead.baseStats);
    if (!overhead.hardStats.isNull())
        j.set("hardStats", overhead.hardStats);
    return j;
}

OverheadResult
overheadFromJson(const Json &j)
{
    OverheadResult o;
    o.baseCycles = j["baseCycles"].asUint();
    o.hardCycles = j["hardCycles"].asUint();
    o.overheadPct = j["overheadPct"].asDouble();
    o.metaBroadcasts = j["metaBroadcasts"].asUint();
    o.dataBytes = j["dataBytes"].asUint();
    o.metaBytes = j["metaBytes"].asUint();
    if (j.has("baseStats"))
        o.baseStats = j["baseStats"];
    if (j.has("hardStats"))
        o.hardStats = j["hardStats"];
    return o;
}

Json
toJson(const EffectivenessResult &result)
{
    Json j = Json::object();
    for (const auto &[name, score] : result)
        j.set(name, toJson(score));
    return j;
}

EffectivenessResult
effectivenessFromJson(const Json &j)
{
    EffectivenessResult result;
    for (const auto &[name, score] : j.members())
        result[name] = detectorScoreFromJson(score);
    return result;
}

Json
toJson(const EffectivenessRun &run)
{
    Json j = Json::object();
    j.set("index", run.index);
    j.set("raceFree", run.raceFree);
    j.set("outcome", run.outcome);
    if (!run.errorType.empty())
        j.set("errorType", run.errorType);
    if (!run.errorMessage.empty())
        j.set("errorMessage", run.errorMessage);
    j.set("injectionValid", run.injectionValid);
    Json dets = Json::object();
    for (const auto &[name, o] : run.byDetector) {
        Json d = Json::object();
        if (!run.raceFree)
            d.set("detected", o.detected);
        Json sites = Json::array();
        for (SiteId s : o.sites)
            sites.push(static_cast<std::uint64_t>(s));
        d.set("sites", std::move(sites));
        d.set("dynamicReports", o.dynamicReports);
        dets.set(name, std::move(d));
    }
    j.set("detectors", std::move(dets));
    if (!run.stats.isNull())
        j.set("stats", run.stats);
    if (!run.explain.isNull())
        j.set("explain", run.explain);
    if (!run.latency.isNull())
        j.set("latency", run.latency);
    return j;
}

EffectivenessRun
effectivenessRunFromJson(const Json &j)
{
    EffectivenessRun run;
    run.index = static_cast<unsigned>(j["index"].asUint());
    run.raceFree = j["raceFree"].asBool();
    run.outcome = j["outcome"].asString();
    if (j.has("errorType"))
        run.errorType = j["errorType"].asString();
    if (j.has("errorMessage"))
        run.errorMessage = j["errorMessage"].asString();
    run.injectionValid = j["injectionValid"].asBool();
    for (const auto &[name, d] : j["detectors"].members()) {
        RunOutcome &o = run.byDetector[name];
        if (d.has("detected"))
            o.detected = d["detected"].asBool();
        for (std::size_t i = 0; i < d["sites"].size(); ++i)
            o.sites.insert(
                static_cast<SiteId>(d["sites"].at(i).asUint()));
        o.dynamicReports = d["dynamicReports"].asUint();
    }
    if (j.has("stats"))
        run.stats = j["stats"];
    if (j.has("explain"))
        run.explain = j["explain"];
    if (j.has("latency"))
        run.latency = j["latency"];
    return run;
}

Json
batchJson(const std::vector<BatchItemResult> &results, ExecMode mode)
{
    Json doc = Json::object();
    doc.set("schema", "hard.batch.v2");
    // Cycle mode emits no field at all: cycle dumps stay byte-identical
    // to pre-fast-mode output.
    if (mode == ExecMode::Fast)
        doc.set("mode", "fast");
    Json items = Json::array();
    Json errors = Json::array();

    auto add_error = [&errors](const BatchItemResult &res,
                               std::int64_t run,
                               const std::string &outcome,
                               const std::string &type,
                               const std::string &message) {
        Json e = Json::object();
        e.set("label", res.label);
        e.set("workload", res.workload);
        e.set("unit",
              run == -1 ? Json("overhead")
                        : Json(static_cast<std::uint64_t>(run)));
        e.set("outcome", outcome);
        e.set("errorType", type);
        e.set("errorMessage", message);
        e.set("repro", reproCommand(res, run));
        errors.push(std::move(e));
    };

    for (const BatchItemResult &res : results) {
        Json item = Json::object();
        item.set("label", res.label);
        item.set("workload", res.workload);
        if (!res.runDetail.empty()) {
            item.set("runs", res.runs);
            item.set("seed0", res.seed0);
            Json eff = Json::object();
            eff.set("aggregate", toJson(res.effectiveness));
            Json per_run = Json::array();
            for (const EffectivenessRun &run : res.runDetail) {
                per_run.push(toJson(run));
                if (!run.ok() && run.outcome != "skipped")
                    add_error(res,
                              static_cast<std::int64_t>(run.index),
                              run.outcome, run.errorType,
                              run.errorMessage);
            }
            eff.set("perRun", std::move(per_run));
            item.set("effectiveness", std::move(eff));

            // Per-item attribution aggregate, summed over the runs
            // carrying an explain block. Explain-off dumps never get
            // here, staying byte-identical to pre-provenance output.
            bool any_explain = false;
            std::uint64_t agg_extra = 0, agg_missing = 0;
            std::map<std::string, std::uint64_t> agg_cats;
            for (const EffectivenessRun &run : res.runDetail) {
                if (run.explain.isNull())
                    continue;
                any_explain = true;
                agg_extra += run.explain["extra"].asUint();
                agg_missing += run.explain["missing"].asUint();
                for (const auto &[k, v] :
                     run.explain["categories"].members())
                    agg_cats[k] += v.asUint();
            }
            if (any_explain) {
                Json attr = Json::object();
                attr.set("extra", agg_extra);
                attr.set("missing", agg_missing);
                Json cats = Json::object();
                for (const std::string &name :
                     divergenceCategoryNames()) {
                    auto it = agg_cats.find(name);
                    cats.set(name,
                             it == agg_cats.end() ? 0 : it->second);
                }
                attr.set("categories", std::move(cats));
                item.set("attribution", std::move(attr));
            }
        }
        if (res.haveOverhead || !res.overheadOutcome.empty()) {
            Json oh = Json::object();
            oh.set("outcome", res.overheadOutcome.empty()
                       ? "ok"
                       : res.overheadOutcome);
            if (res.haveOverhead) {
                // Named for the same temporary-lifetime reason as in
                // overheadPayload().
                const Json measured = toJson(res.overhead);
                for (const auto &[k, v] : measured.members())
                    oh.set(k, v);
            }
            if (!res.overheadErrorType.empty())
                oh.set("errorType", res.overheadErrorType);
            if (!res.overheadErrorMessage.empty())
                oh.set("errorMessage", res.overheadErrorMessage);
            item.set("overhead", std::move(oh));
            if (!res.overheadOutcome.empty() &&
                res.overheadOutcome != "ok" &&
                res.overheadOutcome != "skipped")
                add_error(res, -1, res.overheadOutcome,
                          res.overheadErrorType,
                          res.overheadErrorMessage);
        }
        items.push(std::move(item));
    }
    doc.set("items", std::move(items));
    doc.set("errors", std::move(errors));
    return doc;
}

Json
harnessStatsJson(const std::vector<BatchItemResult> &results)
{
    StatGroup harness("harness");
    harness.counter("items").set(results.size());
    Counter &total = harness.counter("unitsTotal");
    Counter &ok = harness.counter("unitsOk");
    Counter &failed = harness.counter("unitsFailed");
    Counter &skipped = harness.counter("unitsSkipped");
    Counter &eff = harness.counter("effectivenessRuns");
    Counter &oh = harness.counter("overheadUnits");

    auto tally = [&](const std::string &outcome) {
        ++total;
        if (outcome == "ok")
            ++ok;
        else if (outcome == "skipped")
            ++skipped;
        else
            ++failed;
    };
    for (const BatchItemResult &res : results) {
        for (const EffectivenessRun &run : res.runDetail) {
            ++eff;
            tally(run.outcome);
        }
        if (!res.overheadOutcome.empty() || res.haveOverhead) {
            ++oh;
            tally(res.overheadOutcome.empty() ? "ok"
                                              : res.overheadOutcome);
        }
    }
    harness.formula("unitFailRate", [&total, &failed] {
        return Formula::ratio(failed.value(), total.value());
    });

    StatRegistry registry;
    registry.add(harness);
    return registry.toJson();
}

} // namespace hard
