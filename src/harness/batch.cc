#include "harness/batch.hh"

#include <memory>

#include "common/logging.hh"

namespace hard
{

EffectivenessRun
runEffectivenessUnit(const std::string &workload, const WorkloadParams &wp,
                     const SimConfig &sim, const DetectorFactory &factory,
                     unsigned index, unsigned num_runs,
                     std::uint64_t seed0, const SharedMap &shared)
{
    EffectivenessRun out;
    out.index = index;
    out.raceFree = index >= num_runs;

    Program prog = buildWorkload(workload, wp);

    Injection inj;
    std::set<SiteId> true_sites;
    if (!out.raceFree) {
        inj = injectRace(prog, seed0 + index, &shared);
        if (!inj.valid) {
            warn("%s: run %u: no injectable critical section",
                 workload.c_str(), index);
            return out;
        }
        out.injectionValid = true;
        true_sites = sitesTouching(prog, inj);
    }

    auto detectors = factory();
    std::vector<RaceDetector *> raw;
    raw.reserve(detectors.size());
    for (auto &d : detectors)
        raw.push_back(d.get());
    runWithDetectors(prog, sim, raw);

    for (auto &d : detectors) {
        RunOutcome &o = out.byDetector[d->name()];
        if (!out.raceFree)
            o.detected = detectedInjection(d->sink(), inj, true_sites);
        o.sites = d->sink().sites();
        o.dynamicReports = d->sink().dynamicCount();
    }
    return out;
}

EffectivenessResult
foldEffectiveness(const std::vector<EffectivenessRun> &runs)
{
    EffectivenessResult result;
    for (const EffectivenessRun &run : runs) {
        if (run.raceFree) {
            for (const auto &[name, o] : run.byDetector) {
                DetectorScore &score = result[name];
                score.falseAlarms = o.sites.size();
                score.dynamicReports = o.dynamicReports;
            }
        } else {
            if (!run.injectionValid)
                continue;
            for (const auto &[name, o] : run.byDetector) {
                DetectorScore &score = result[name];
                ++score.runsAttempted;
                if (o.detected)
                    ++score.bugsDetected;
            }
        }
    }
    return result;
}

EffectivenessResult
runEffectivenessParallel(const std::string &workload,
                         const WorkloadParams &wp, const SimConfig &sim,
                         const DetectorFactory &factory, unsigned num_runs,
                         std::uint64_t seed0, RunPool &pool)
{
    hard_fatal_if(sim.hardTiming.enabled,
                  "effectiveness runs must not enable the HARD timing "
                  "model (all detectors must see identical executions)");

    // Shared-data map (computed once; injection does not change the
    // access set, only the locking).
    const SharedMap shared(buildWorkload(workload, wp));

    std::vector<EffectivenessRun> runs(num_runs + 1);
    pool.runIndexed(num_runs + 1, [&](std::size_t i) {
        runs[i] = runEffectivenessUnit(workload, wp, sim, factory,
                                       static_cast<unsigned>(i), num_runs,
                                       seed0, shared);
    });
    return foldEffectiveness(runs);
}

std::vector<BatchItemResult>
runBatch(const std::vector<BatchItem> &items, RunPool &pool)
{
    for (const BatchItem &item : items) {
        hard_fatal_if(item.effectiveness && !item.factory,
                      "batch item '%s' has no detector factory",
                      item.workload.c_str());
        hard_fatal_if(item.effectiveness && item.sim.hardTiming.enabled,
                      "effectiveness runs must not enable the HARD "
                      "timing model (all detectors must see identical "
                      "executions)");
    }

    std::vector<BatchItemResult> results(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
        results[i].label = items[i].label.empty() ? items[i].workload
                                                  : items[i].label;
        results[i].workload = items[i].workload;
        results[i].runs = items[i].runs;
        results[i].seed0 = items[i].seed0;
        if (items[i].effectiveness)
            results[i].runDetail.resize(items[i].runs + 1);
    }

    // Phase 1: shared-data maps, one per effectiveness item (each is
    // itself a workload build + scan, so worth parallelizing).
    std::vector<std::unique_ptr<SharedMap>> shared(items.size());
    std::vector<std::size_t> eff_items;
    for (std::size_t i = 0; i < items.size(); ++i)
        if (items[i].effectiveness)
            eff_items.push_back(i);
    pool.runIndexed(eff_items.size(), [&](std::size_t k) {
        std::size_t i = eff_items[k];
        shared[i] = std::make_unique<SharedMap>(
            buildWorkload(items[i].workload, items[i].wp));
    });

    // Phase 2: flatten every independent run unit and fan out. Each
    // unit writes only its preallocated slot, so merged results are
    // ordered by (item, run index) no matter which worker finishes
    // first.
    struct Unit
    {
        std::size_t item;
        bool isOverhead;
        unsigned runIndex;
    };
    std::vector<Unit> units;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (items[i].effectiveness)
            for (unsigned r = 0; r <= items[i].runs; ++r)
                units.push_back({i, false, r});
        if (items[i].overhead)
            units.push_back({i, true, 0});
    }
    pool.runIndexed(units.size(), [&](std::size_t u) {
        const Unit &unit = units[u];
        const BatchItem &item = items[unit.item];
        BatchItemResult &res = results[unit.item];
        if (unit.isOverhead) {
            res.overhead = item.directory
                ? measureOverheadDirectory(item.workload, item.wp,
                                           item.sim, item.hardCfg)
                : measureOverhead(item.workload, item.wp, item.sim,
                                  item.hardCfg);
            res.haveOverhead = true;
        } else {
            res.runDetail[unit.runIndex] = runEffectivenessUnit(
                item.workload, item.wp, item.sim, item.factory,
                unit.runIndex, item.runs, item.seed0,
                *shared[unit.item]);
        }
    });

    // Phase 3: fold per-run outcomes in run-index order.
    for (std::size_t i = 0; i < items.size(); ++i)
        if (items[i].effectiveness)
            results[i].effectiveness =
                foldEffectiveness(results[i].runDetail);

    return results;
}

Json
toJson(const DetectorScore &score)
{
    Json j = Json::object();
    j.set("bugsDetected", score.bugsDetected);
    j.set("runsAttempted", score.runsAttempted);
    j.set("falseAlarms", static_cast<std::uint64_t>(score.falseAlarms));
    j.set("dynamicReports", score.dynamicReports);
    return j;
}

DetectorScore
detectorScoreFromJson(const Json &j)
{
    DetectorScore s;
    s.bugsDetected = static_cast<unsigned>(j["bugsDetected"].asUint());
    s.runsAttempted = static_cast<unsigned>(j["runsAttempted"].asUint());
    s.falseAlarms = static_cast<std::size_t>(j["falseAlarms"].asUint());
    s.dynamicReports = j["dynamicReports"].asUint();
    return s;
}

Json
toJson(const OverheadResult &overhead)
{
    Json j = Json::object();
    j.set("baseCycles", overhead.baseCycles);
    j.set("hardCycles", overhead.hardCycles);
    j.set("overheadPct", overhead.overheadPct);
    j.set("metaBroadcasts", overhead.metaBroadcasts);
    j.set("dataBytes", overhead.dataBytes);
    j.set("metaBytes", overhead.metaBytes);
    return j;
}

OverheadResult
overheadFromJson(const Json &j)
{
    OverheadResult o;
    o.baseCycles = j["baseCycles"].asUint();
    o.hardCycles = j["hardCycles"].asUint();
    o.overheadPct = j["overheadPct"].asDouble();
    o.metaBroadcasts = j["metaBroadcasts"].asUint();
    o.dataBytes = j["dataBytes"].asUint();
    o.metaBytes = j["metaBytes"].asUint();
    return o;
}

Json
toJson(const EffectivenessResult &result)
{
    Json j = Json::object();
    for (const auto &[name, score] : result)
        j.set(name, toJson(score));
    return j;
}

EffectivenessResult
effectivenessFromJson(const Json &j)
{
    EffectivenessResult result;
    for (const auto &[name, score] : j.members())
        result[name] = detectorScoreFromJson(score);
    return result;
}

Json
toJson(const EffectivenessRun &run)
{
    Json j = Json::object();
    j.set("index", run.index);
    j.set("raceFree", run.raceFree);
    j.set("injectionValid", run.injectionValid);
    Json dets = Json::object();
    for (const auto &[name, o] : run.byDetector) {
        Json d = Json::object();
        if (!run.raceFree)
            d.set("detected", o.detected);
        Json sites = Json::array();
        for (SiteId s : o.sites)
            sites.push(static_cast<std::uint64_t>(s));
        d.set("sites", std::move(sites));
        d.set("dynamicReports", o.dynamicReports);
        dets.set(name, std::move(d));
    }
    j.set("detectors", std::move(dets));
    return j;
}

Json
batchJson(const std::vector<BatchItemResult> &results, unsigned jobs)
{
    Json doc = Json::object();
    doc.set("schema", "hard.batch.v1");
    doc.set("jobs", jobs);
    Json items = Json::array();
    for (const BatchItemResult &res : results) {
        Json item = Json::object();
        item.set("label", res.label);
        item.set("workload", res.workload);
        if (!res.runDetail.empty()) {
            item.set("runs", res.runs);
            item.set("seed0", res.seed0);
            Json eff = Json::object();
            eff.set("aggregate", toJson(res.effectiveness));
            Json per_run = Json::array();
            for (const EffectivenessRun &run : res.runDetail)
                per_run.push(toJson(run));
            eff.set("perRun", std::move(per_run));
            item.set("effectiveness", std::move(eff));
        }
        if (res.haveOverhead)
            item.set("overhead", toJson(res.overhead));
        items.push(std::move(item));
    }
    doc.set("items", std::move(items));
    return doc;
}

} // namespace hard
