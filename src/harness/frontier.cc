#include "harness/frontier.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"
#include "telemetry/stat_registry.hh"

namespace hard
{

namespace
{

/** Stable short label for a rate ("1", "0.5", "0.125", ...). */
std::string
rateLabel(double rate)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", rate);
    return buf;
}

/** Rates of @p o deduplicated and sorted descending (full first). */
std::vector<double>
sweptRates(const FrontierOptions &o)
{
    std::vector<double> rates = o.rates;
    std::sort(rates.begin(), rates.end(), std::greater<double>());
    rates.erase(std::unique(rates.begin(), rates.end()), rates.end());
    for (double r : rates) {
        if (!(r > 0.0) || r > 1.0)
            throw ConfigError(
                errfmt("frontier: sampling rate %g outside (0, 1]", r));
    }
    if (rates.empty())
        throw ConfigError("frontier: no sampling rates given");
    return rates;
}

SamplingSpec
specFor(const FrontierOptions &o, double rate)
{
    SamplingSpec s;
    s.mode = o.sampleMode;
    s.rate = rate;
    s.seed = o.sampleSeed;
    s.period = o.samplePeriod;
    return s;
}

DetectorFactory
effFactory(const FrontierOptions &o)
{
    if (o.factory)
        return o.factory;
    HardConfig cfg = o.hardCfg;
    return [cfg] {
        std::vector<std::unique_ptr<RaceDetector>> dets;
        dets.push_back(std::make_unique<HardDetector>("hard", cfg));
        return dets;
    };
}

/** Detection-latency aggregate for one detector across one item's
 * injected runs. */
Json
latencyJson(const BatchItemResult &res, const std::string &detector,
            unsigned runs)
{
    std::vector<std::int64_t> samples;
    std::uint64_t exposures = 0;
    const unsigned n =
        std::min<unsigned>(runs, static_cast<unsigned>(res.runDetail.size()));
    for (unsigned i = 0; i < n; ++i) {
        const EffectivenessRun &run = res.runDetail[i];
        if (!run.ok() || !run.injectionValid || run.latency.isNull())
            continue;
        if (run.latency.has("exposeCycle") &&
            run.latency["exposeCycle"].asInt() >= 0)
            ++exposures;
        if (!run.latency.has("byDetector"))
            continue;
        const Json &by = run.latency["byDetector"];
        if (!by.has(detector) || !by[detector].has("latencyCycles"))
            continue;
        samples.push_back(by[detector]["latencyCycles"].asInt());
    }
    std::sort(samples.begin(), samples.end());

    Json j = Json::object();
    j.set("samples", static_cast<std::uint64_t>(samples.size()));
    j.set("exposures", exposures);
    if (samples.empty()) {
        j.set("meanCycles", -1.0);
        j.set("p50Cycles", std::int64_t{-1});
        j.set("maxCycles", std::int64_t{-1});
        return j;
    }
    double sum = 0.0;
    for (std::int64_t s : samples)
        sum += static_cast<double>(s);
    j.set("meanCycles", sum / static_cast<double>(samples.size()));
    j.set("p50Cycles", samples[(samples.size() - 1) / 2]);
    j.set("maxCycles", samples.back());
    return j;
}

Json
overheadJson(const BatchItemResult &res)
{
    Json j = Json::object();
    j.set("outcome",
          res.overheadOutcome.empty() ? "missing" : res.overheadOutcome);
    const OverheadResult &ov = res.overhead;
    j.set("overheadPct", ov.overheadPct);
    j.set("baseCycles", static_cast<std::uint64_t>(ov.baseCycles));
    j.set("hardCycles", static_cast<std::uint64_t>(ov.hardCycles));
    j.set("metaBroadcasts", ov.metaBroadcasts);
    j.set("metaBytes", ov.metaBytes);
    j.set("dataBytes", ov.dataBytes);

    // Bus occupancy and report traffic come out of the HARD leg's
    // stats snapshot; both are 0 when the leg failed or stats were
    // absent (statFromJson treats missing levels as zero).
    const double hard_cycles = static_cast<double>(ov.hardCycles);
    const std::uint64_t busy = statFromJson(ov.hardStats, "bus", "busyCycles");
    const std::uint64_t reports =
        statFromJson(ov.hardStats, "detector.hard", "dynamicReports");
    j.set("busOccupancyPct",
          hard_cycles > 0.0 ? 100.0 * static_cast<double>(busy) / hard_cycles
                            : 0.0);
    j.set("reportsPerMcycle",
          hard_cycles > 0.0
              ? static_cast<double>(reports) / hard_cycles * 1e6
              : 0.0);
    return j;
}

} // namespace

std::vector<BatchItem>
frontierItems(const FrontierOptions &o)
{
    const std::vector<double> rates = sweptRates(o);
    const DetectorFactory factory = effFactory(o);

    std::vector<BatchItem> items;
    for (double rate : rates) {
        BatchItem eff;
        eff.label = "frontier.eff.r" + rateLabel(rate);
        eff.workload = o.workload;
        eff.wp = o.wp;
        eff.sim = o.sim;
        eff.sim.sampling = specFor(o, rate);
        eff.factory = factory;
        eff.runs = o.runs;
        eff.seed0 = o.seed0;
        eff.effectiveness = true;
        eff.collectLatency = true;
        eff.mode = o.effMode;
        eff.traceCache = o.traceCache;
        items.push_back(std::move(eff));

        if (!o.overhead)
            continue;
        BatchItem ovh;
        ovh.label = "frontier.ovh.r" + rateLabel(rate);
        ovh.workload = o.workload;
        ovh.wp = o.wp;
        ovh.sim = o.sim;
        ovh.sim.sampling = specFor(o, rate);
        ovh.effectiveness = false;
        ovh.overhead = true;
        ovh.directory = o.directory;
        ovh.hardCfg = o.hardCfg;
        ovh.collectStats = true;
        items.push_back(std::move(ovh));
    }
    return items;
}

Json
frontierJson(const FrontierOptions &o,
             const std::vector<BatchItemResult> &results)
{
    const std::vector<double> rates = sweptRates(o);
    const std::size_t per_rate = o.overhead ? 2 : 1;
    hard_panic_if(results.size() != rates.size() * per_rate,
                  "frontier: result/item count mismatch");

    Json doc = Json::object();
    doc.set("schema", "hard.frontier.v1");
    doc.set("workload", o.workload);
    doc.set("execMode", execModeName(o.effMode));
    doc.set("sampleMode", samplingModeName(o.sampleMode));
    doc.set("sampleSeed", o.sampleSeed);
    doc.set("samplePeriod", static_cast<std::uint64_t>(o.samplePeriod));
    doc.set("granuleBytes", static_cast<std::uint64_t>(
                                SamplingSpec{}.granuleBytes));
    doc.set("runs", static_cast<std::uint64_t>(o.runs));
    doc.set("seed0", o.seed0);

    Json points = Json::array();
    for (std::size_t i = 0; i < rates.size(); ++i) {
        const BatchItemResult &eff = results[i * per_rate];
        Json point = Json::object();
        point.set("rate", rates[i]);

        Json detectors = Json::object();
        for (const auto &[name, score] : eff.effectiveness) {
            Json d = Json::object();
            d.set("injected",
                  static_cast<std::uint64_t>(score.runsAttempted));
            d.set("detected", static_cast<std::uint64_t>(score.bugsDetected));
            d.set("coverage",
                  score.runsAttempted > 0
                      ? static_cast<double>(score.bugsDetected) /
                            static_cast<double>(score.runsAttempted)
                      : 0.0);
            d.set("falseAlarms",
                  static_cast<std::uint64_t>(score.falseAlarms));
            d.set("dynamicReports", score.dynamicReports);
            d.set("latency", latencyJson(eff, name, o.runs));
            detectors.set(name, std::move(d));
        }
        point.set("detectors", std::move(detectors));

        if (o.overhead)
            point.set("overhead", overheadJson(results[i * per_rate + 1]));
        points.push(std::move(point));
    }
    doc.set("points", std::move(points));
    return doc;
}

Json
runFrontier(const FrontierOptions &o, RunPool &pool,
            const BatchOptions &opts)
{
    const std::vector<BatchItemResult> results =
        runBatch(frontierItems(o), pool, opts);
    return frontierJson(o, results);
}

} // namespace hard
