#include "harness/run_pool.hh"

#include <exception>

namespace hard
{

/**
 * One in-flight batch. Lives on the runIndexed caller's stack; all
 * fields are guarded by RunPool::mu_ (fn itself runs unlocked).
 */
struct RunPool::Batch
{
    std::size_t count = 0;
    const std::function<void(std::size_t)> *fn = nullptr;
    /** Next index to claim (work-stealing cursor). */
    std::size_t next = 0;
    /** Tasks not yet finished. */
    std::size_t remaining = 0;
    /** Per-index exception slots (null when the task succeeded). */
    std::vector<std::exception_ptr> errors;
};

unsigned
RunPool::defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

RunPool::RunPool(unsigned jobs) : jobs_(jobs == 0 ? defaultJobs() : jobs)
{
    // jobs == 1 runs batches inline; no workers needed.
    if (jobs_ < 2)
        return;
    workers_.reserve(jobs_);
    for (unsigned i = 0; i < jobs_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

RunPool::~RunPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
RunPool::workerLoop()
{
    std::unique_lock<std::mutex> lk(mu_);
    while (true) {
        wake_.wait(lk, [this] {
            return stop_ ||
                (batch_ != nullptr && batch_->next < batch_->count);
        });
        if (stop_)
            return;
        Batch *b = batch_;
        while (b->next < b->count) {
            const std::size_t i = b->next++;
            lk.unlock();
            std::exception_ptr err;
            try {
                (*b->fn)(i);
            } catch (...) {
                err = std::current_exception();
            }
            lk.lock();
            if (err)
                b->errors[i] = err;
            if (--b->remaining == 0)
                done_.notify_all();
        }
    }
}

void
RunPool::runIndexed(std::size_t count,
                    const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;

    // Serial degeneration: index order on the calling thread, the
    // first exception propagating immediately (same observable
    // behaviour as the pooled lowest-index-wins rule).
    if (jobs_ < 2 || workers_.empty()) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::vector<std::exception_ptr> errors = drain(count, fn);
    for (std::exception_ptr &err : errors)
        if (err)
            std::rethrow_exception(err);
}

std::vector<std::exception_ptr>
RunPool::runCollect(std::size_t count,
                    const std::function<void(std::size_t)> &fn)
{
    std::vector<std::exception_ptr> errors(count);
    if (count == 0)
        return errors;

    // Serial degeneration: unlike runIndexed, a failed task does not
    // stop the batch — every index runs and failures land in their
    // slots, exactly as in the pooled case.
    if (jobs_ < 2 || workers_.empty()) {
        for (std::size_t i = 0; i < count; ++i) {
            try {
                fn(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
        return errors;
    }

    return drain(count, fn);
}

std::vector<std::exception_ptr>
RunPool::drain(std::size_t count,
               const std::function<void(std::size_t)> &fn)
{
    std::lock_guard<std::mutex> caller(callerMu_);

    Batch b;
    b.count = count;
    b.fn = &fn;
    b.remaining = count;
    b.errors.resize(count);

    {
        std::unique_lock<std::mutex> lk(mu_);
        batch_ = &b;
        wake_.notify_all();
        done_.wait(lk, [&b] { return b.remaining == 0; });
        batch_ = nullptr;
    }

    return std::move(b.errors);
}

} // namespace hard
