/**
 * @file
 * Per-run journal for resumable batch sweeps.
 *
 * A long sweep interrupted by a crash, a kill or a --max-failures
 * abort should not have to redo finished work. The batch driver
 * appends one JSONL record per completed run unit — as soon as the
 * unit finishes, flushed line-by-line so a dying process loses at most
 * the in-flight units. On --resume the journal is loaded, records
 * whose signature matches the current invocation are restored into
 * their result slots, and only the missing units re-run. Because every
 * unit is deterministic in (workload, config, seed), restored results
 * — including *failed* ones — are exactly what a re-run would produce,
 * so a resumed sweep's final JSON is byte-identical to an
 * uninterrupted one at any --jobs setting.
 *
 * File layout (one JSON value per line):
 *   {"schema":"hard.journal.v1","signature":"<canonical batch args>"}
 *   {"item":0,"run":0,"payload":{...}}      effectiveness run unit
 *   {"item":0,"run":-1,"payload":{...}}     overhead unit
 */

#ifndef HARD_HARNESS_JOURNAL_HH
#define HARD_HARNESS_JOURNAL_HH

#include <cstdio>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "common/json.hh"

namespace hard
{

/** Identifies one run unit: (item index, run index; run -1 = the
 * item's overhead measurement). */
using JournalKey = std::pair<std::size_t, std::int64_t>;

/** Payloads of previously journaled units, keyed for restoration. */
using JournalEntries = std::map<JournalKey, Json>;

/** Journal schema tag (first line of every journal file). */
extern const char *const kJournalSchema;

/** Append-only, thread-safe journal writer. */
class BatchJournal
{
  public:
    /**
     * Open the journal at @p path.
     * @param signature Canonical description of the batch invocation
     * (stored in the header; checked by loadJournal on resume).
     * @param resume false: create/truncate and write the meta header;
     * true: append to an existing journal previously validated with
     * loadJournal(). Throws ConfigError if the file cannot be opened.
     */
    BatchJournal(const std::string &path, const std::string &signature,
                 bool resume = false);
    ~BatchJournal();

    BatchJournal(const BatchJournal &) = delete;
    BatchJournal &operator=(const BatchJournal &) = delete;

    /**
     * Append the record for one completed unit and flush, so the line
     * survives the process dying right afterwards. Thread-safe.
     */
    void append(const JournalKey &key, const Json &payload);

    const std::string &path() const { return path_; }

    /**
     * Crash-fault injection (campaign tests): when the record for
     * @p key is appended, write only the first half of its line,
     * flush, and SIGKILL the process — the exact torn state a shard
     * dying mid-append leaves behind. The supervisor's merge must
     * skip the torn line and re-queue the unit.
     */
    void killMidAppend(const JournalKey &key);

    /**
     * Observe every successfully appended record (campaign heartbeat
     * plumbing). Called with the unit's key and payload after the
     * record's line has been written and flushed, outside the append
     * lock. The hook must not touch the journal file — it is a
     * listener, not a writer; journal bytes are identical whether or
     * not a hook is set.
     */
    void setAppendHook(
        std::function<void(const JournalKey &, const Json &)> hook);

  private:
    std::string path_;
    std::FILE *file_;
    std::mutex mu_;
    std::optional<JournalKey> killKey_;
    std::function<void(const JournalKey &, const Json &)> appendHook_;
};

/**
 * Load a journal written by a previous run of the same sweep.
 * Verifies the meta header (schema + @p signature; mismatch throws
 * ConfigError — resuming under different parameters would silently
 * merge incompatible results). Torn records — a trailing partial
 * line, or any unparseable/incomplete line from a crash mid-append —
 * are skipped with a warn(); every intact record before and after
 * them is still restored. Throws ConfigError if the file does not
 * exist or is not a journal.
 */
JournalEntries loadJournal(const std::string &path,
                           const std::string &signature);

/** @return the journal path conventionally paired with a batch JSON
 * output path: "<path minus .json>.journal.jsonl". */
std::string journalPathFor(const std::string &jsonPath);

} // namespace hard

#endif // HARD_HARNESS_JOURNAL_HH
