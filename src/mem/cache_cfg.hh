/**
 * @file
 * Cache geometry/latency configuration (Table 1 of the paper provides
 * the default values used in the evaluation).
 */

#ifndef HARD_MEM_CACHE_CFG_HH
#define HARD_MEM_CACHE_CFG_HH

#include <cstdint>

#include "common/bitops.hh"
#include "common/error.hh"
#include "common/types.hh"

namespace hard
{

/** Geometry and hit latency of one cache level. */
struct CacheConfig
{
    /** Total capacity in bytes. */
    std::uint64_t sizeBytes = 16 * 1024;
    /** Set associativity (ways). */
    unsigned assoc = 4;
    /** Line size in bytes. */
    unsigned lineBytes = 32;
    /** Hit latency in cycles. */
    Cycle hitLatency = 3;

    /** @return the number of sets implied by the geometry. */
    std::uint64_t
    numSets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(assoc) * lineBytes);
    }

    /** Throw ConfigError if the geometry is not realizable. */
    void
    validate(const char *what) const
    {
        hard_throw_if(!isPowerOf2(lineBytes), ConfigError,
                      "%s: line size %u not a power of two", what,
                      lineBytes);
        hard_throw_if(assoc == 0, ConfigError, "%s: zero associativity",
                      what);
        hard_throw_if(sizeBytes % (std::uint64_t{assoc} * lineBytes) != 0,
                      ConfigError,
                      "%s: size %llu not divisible by assoc*line", what,
                      static_cast<unsigned long long>(sizeBytes));
        hard_throw_if(!isPowerOf2(numSets()), ConfigError,
                      "%s: set count %llu not a power of two", what,
                      static_cast<unsigned long long>(numSets()));
    }

    /** @return the line-aligned base address containing @p a. */
    Addr lineAddr(Addr a) const { return alignDown(a, lineBytes); }

    /** @return the set index for @p a. */
    std::uint64_t
    setIndex(Addr a) const
    {
        return (a / lineBytes) & (numSets() - 1);
    }

    /** @return the tag for @p a (line address bits above the index). */
    std::uint64_t
    tag(Addr a) const
    {
        return (a / lineBytes) >> floorLog2(numSets());
    }
};

} // namespace hard

#endif // HARD_MEM_CACHE_CFG_HH
