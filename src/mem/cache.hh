/**
 * @file
 * Set-associative tag store with true-LRU replacement.
 *
 * The cache tracks tags and MESI states only; simulated programs carry
 * no data values (race detection depends on the access/sync trace, not
 * on arithmetic results). Timing and coherence are orchestrated by the
 * bus/MemorySystem layer above.
 */

#ifndef HARD_MEM_CACHE_HH
#define HARD_MEM_CACHE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/cache_cfg.hh"
#include "mem/cstate.hh"

namespace hard
{

/** One way of one set in the tag store. */
struct CacheLine
{
    std::uint64_t tag = 0;
    CState cstate = CState::Invalid;
    /** LRU timestamp: larger = more recently used. */
    std::uint64_t lastUse = 0;

    bool valid() const { return cstate != CState::Invalid; }
    bool dirty() const { return cstate == CState::Modified; }
};

/** Description of a line displaced to make room for a fill. */
struct Eviction
{
    Addr lineAddr = invalidAddr;
    bool dirty = false;
};

/**
 * A single cache level (used for both the private L1s and the shared
 * L2). Pure bookkeeping: no latency, no coherence decisions.
 */
class SetAssocCache
{
  public:
    /**
     * @param name Stats prefix (e.g. "l1.0", "l2").
     * @param cfg Geometry; validated on construction.
     */
    SetAssocCache(const std::string &name, const CacheConfig &cfg);

    /** @return pointer to the line holding @p addr, or nullptr. */
    CacheLine *findLine(Addr addr);
    const CacheLine *findLine(Addr addr) const;

    /**
     * Insert (fill) the line containing @p addr in state @p st,
     * evicting the LRU way if the set is full.
     *
     * @return the eviction performed, if any.
     */
    std::optional<Eviction> insert(Addr addr, CState st);

    /** Mark the line holding @p addr as most recently used. */
    void touch(Addr addr);

    /** Drop the line holding @p addr, if present. @return it was held. */
    bool invalidate(Addr addr);

    /**
     * Change the coherence state of a resident line.
     * Panics if the line is absent.
     */
    void setState(Addr addr, CState st);

    /** @return the line's state, or Invalid if absent. */
    CState state(Addr addr) const;

    /** Invalidate every line (used on flush-style resets in tests). */
    void invalidateAll();

    /** Enumerate valid lines: cb(lineAddr, line). */
    void forEachLine(
        const std::function<void(Addr, const CacheLine &)> &cb) const;

    const CacheConfig &config() const { return cfg_; }
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /** @return count of currently valid lines. */
    std::size_t validLines() const;

  private:
    /** @return [first,last) way index range of @p addr's set. */
    std::pair<std::size_t, std::size_t> setRange(Addr addr) const;

    /** Rebuild a line address from a tag + the set it occupies. */
    Addr lineAddrOf(std::uint64_t tag, std::uint64_t set) const;

    CacheConfig cfg_;
    std::vector<CacheLine> lines_;
    std::uint64_t useClock_ = 0;
    StatGroup stats_;
};

} // namespace hard

#endif // HARD_MEM_CACHE_HH
