/**
 * @file
 * MESI coherence states. Note these are the *CState* of the paper's
 * Figure 3 — distinct from the lockset LState kept by HARD.
 */

#ifndef HARD_MEM_CSTATE_HH
#define HARD_MEM_CSTATE_HH

namespace hard
{

/** MESI coherence state of a cache line. */
enum class CState
{
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

/** @return a short printable name for @p s. */
inline const char *
cstateName(CState s)
{
    switch (s) {
      case CState::Invalid:
        return "I";
      case CState::Shared:
        return "S";
      case CState::Exclusive:
        return "E";
      case CState::Modified:
        return "M";
    }
    return "?";
}

/** @return true if a local read hit is allowed in state @p s. */
inline bool
canRead(CState s)
{
    return s != CState::Invalid;
}

/** @return true if a local write hit is allowed in state @p s. */
inline bool
canWrite(CState s)
{
    return s == CState::Exclusive || s == CState::Modified;
}

} // namespace hard

#endif // HARD_MEM_CSTATE_HH
