#include "mem/cache.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace hard
{

SetAssocCache::SetAssocCache(const std::string &name, const CacheConfig &cfg)
    : cfg_(cfg), stats_(name)
{
    cfg_.validate(name.c_str());
    lines_.resize(cfg_.numSets() * cfg_.assoc);
}

std::pair<std::size_t, std::size_t>
SetAssocCache::setRange(Addr addr) const
{
    std::size_t first = cfg_.setIndex(addr) * cfg_.assoc;
    return {first, first + cfg_.assoc};
}

Addr
SetAssocCache::lineAddrOf(std::uint64_t tag, std::uint64_t set) const
{
    std::uint64_t line_no = (tag << floorLog2(cfg_.numSets())) | set;
    return line_no * cfg_.lineBytes;
}

CacheLine *
SetAssocCache::findLine(Addr addr)
{
    auto [first, last] = setRange(addr);
    std::uint64_t tag = cfg_.tag(addr);
    for (std::size_t i = first; i < last; ++i) {
        if (lines_[i].valid() && lines_[i].tag == tag)
            return &lines_[i];
    }
    return nullptr;
}

const CacheLine *
SetAssocCache::findLine(Addr addr) const
{
    return const_cast<SetAssocCache *>(this)->findLine(addr);
}

std::optional<Eviction>
SetAssocCache::insert(Addr addr, CState st)
{
    hard_panic_if(st == CState::Invalid, "%s: filling line in Invalid",
                  stats_.name().c_str());
    hard_panic_if(findLine(addr) != nullptr,
                  "%s: double fill of line %llx", stats_.name().c_str(),
                  static_cast<unsigned long long>(cfg_.lineAddr(addr)));

    auto [first, last] = setRange(addr);
    // Prefer an invalid way; otherwise evict true-LRU.
    std::size_t victim = first;
    bool found_invalid = false;
    for (std::size_t i = first; i < last; ++i) {
        if (!lines_[i].valid()) {
            victim = i;
            found_invalid = true;
            break;
        }
        if (lines_[i].lastUse < lines_[victim].lastUse)
            victim = i;
    }

    std::optional<Eviction> evicted;
    if (!found_invalid) {
        Eviction ev;
        ev.lineAddr =
            lineAddrOf(lines_[victim].tag, cfg_.setIndex(addr));
        ev.dirty = lines_[victim].dirty();
        evicted = ev;
        ++stats_.counter("evictions");
        if (ev.dirty)
            ++stats_.counter("writebacks");
    }

    lines_[victim].tag = cfg_.tag(addr);
    lines_[victim].cstate = st;
    lines_[victim].lastUse = ++useClock_;
    ++stats_.counter("fills");
    return evicted;
}

void
SetAssocCache::touch(Addr addr)
{
    CacheLine *line = findLine(addr);
    hard_panic_if(line == nullptr, "%s: touch of absent line %llx",
                  stats_.name().c_str(),
                  static_cast<unsigned long long>(addr));
    line->lastUse = ++useClock_;
}

bool
SetAssocCache::invalidate(Addr addr)
{
    CacheLine *line = findLine(addr);
    if (line == nullptr)
        return false;
    line->cstate = CState::Invalid;
    ++stats_.counter("invalidations");
    return true;
}

void
SetAssocCache::setState(Addr addr, CState st)
{
    CacheLine *line = findLine(addr);
    hard_panic_if(line == nullptr, "%s: setState of absent line %llx",
                  stats_.name().c_str(),
                  static_cast<unsigned long long>(addr));
    hard_panic_if(st == CState::Invalid,
                  "%s: use invalidate() to drop lines",
                  stats_.name().c_str());
    line->cstate = st;
}

CState
SetAssocCache::state(Addr addr) const
{
    const CacheLine *line = findLine(addr);
    return line ? line->cstate : CState::Invalid;
}

void
SetAssocCache::invalidateAll()
{
    for (auto &line : lines_)
        line.cstate = CState::Invalid;
}

void
SetAssocCache::forEachLine(
    const std::function<void(Addr, const CacheLine &)> &cb) const
{
    for (std::size_t i = 0; i < lines_.size(); ++i) {
        if (!lines_[i].valid())
            continue;
        std::uint64_t set = i / cfg_.assoc;
        cb(lineAddrOf(lines_[i].tag, set), lines_[i]);
    }
}

std::size_t
SetAssocCache::validLines() const
{
    std::size_t n = 0;
    for (const auto &line : lines_)
        if (line.valid())
            ++n;
    return n;
}

} // namespace hard
