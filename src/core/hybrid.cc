#include "core/hybrid.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace hard
{

HybridDetector::HybridDetector(const std::string &name,
                               const HardConfig &cfg)
    : RaceDetector(name),
      cfg_(cfg),
      meta_(cfg.metaGeometry, cfg.unbounded)
{
    const unsigned line = cfg_.metaGeometry.lineBytes;
    hard_fatal_if(cfg_.granularityBytes == 0 ||
                      cfg_.granularityBytes > line ||
                      line % cfg_.granularityBytes != 0,
                  "hybrid: granularity %u does not divide line size %u",
                  cfg_.granularityBytes, line);
    hard_fatal_if(line / cfg_.granularityBytes > 8,
                  "hybrid: more than 8 granules per line unsupported");
    lockRegs_.fill(LockRegister(cfg_.bloomBits, cfg_.counterBits));
    for (unsigned t = 0; t < kMaxThreads; ++t)
        nonLockVc_[t][t] = 1;
}

void
HybridDetector::access(const MemEvent &ev, bool write)
{
    hard_panic_if(ev.tid >= kMaxThreads, "hybrid: thread id %u too large",
                  ev.tid);
    bool fresh = false;
    Line &line = meta_.lookup(ev.addr, fresh);

    const unsigned gran = cfg_.granularityBytes;
    const Addr line_base = cfg_.metaGeometry.lineAddr(ev.addr);
    const Addr lo = alignDown(ev.addr, gran);
    const Addr hi = ev.addr + (ev.size ? ev.size : 1);
    const std::uint32_t lockset = lockRegs_[ev.tid].vector().raw();
    const VClock &vc = nonLockVc_[ev.tid];

    for (Addr a = lo; a < hi; a += gran) {
        Granule &g = line.g[(a - line_base) / gran];
        LStateStep step = lstateAccess(g.state, g.owner, ev.tid, write);
        g.state = step.next;
        g.owner = step.owner;
        if (step.updateCandidate) {
            g.bf &= lockset;
            if (step.reportIfEmpty &&
                BfVector::rawSetEmpty(g.bf, cfg_.bloomBits)) {
                // Lockset flags a violation. Prune it when *every*
                // other thread's previous access to this granule is
                // ordered before this one by non-lock synchronization
                // (barrier or semaphore edges): the hand-off is safe
                // even though no common lock protects it.
                bool all_ordered = true;
                for (unsigned u = 0; u < kMaxThreads; ++u) {
                    if (u == ev.tid)
                        continue;
                    if (g.accessClk[u] > vc[u]) {
                        all_ordered = false;
                        break;
                    }
                }
                if (all_ordered) {
                    ++pruned_;
                } else {
                    emit(ev.tid, a, gran, ev.site, write, ev.at);
                }
            }
        }
        g.accessClk[ev.tid] = vc[ev.tid];
    }
}

void
HybridDetector::onRead(const MemEvent &ev)
{
    access(ev, false);
}

void
HybridDetector::onWrite(const MemEvent &ev)
{
    access(ev, true);
}

void
HybridDetector::onLockAcquire(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads, "hybrid: thread id %u too large",
                  ev.tid);
    lockRegs_[ev.tid].acquire(ev.lock);
}

void
HybridDetector::onLockRelease(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads, "hybrid: thread id %u too large",
                  ev.tid);
    lockRegs_[ev.tid].release(ev.lock);
}

void
HybridDetector::onBarrier(const BarrierEvent &ev)
{
    (void)ev;
    if (cfg_.barrierReset) {
        meta_.forEach([](Addr, Line &line) {
            for (Granule &g : line.g) {
                g.bf = 0xffffffffu;
                g.state = LState::Virgin;
                g.owner = invalidThread;
            }
        });
    }
    // Barrier = non-lock synchronization: join and advance the
    // non-lock vector clocks.
    VClock all;
    for (unsigned t = 0; t < kMaxThreads; ++t)
        all.join(nonLockVc_[t]);
    for (unsigned t = 0; t < kMaxThreads; ++t) {
        nonLockVc_[t] = all;
        ++nonLockVc_[t][t];
    }
}

void
HybridDetector::onSemaPost(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads, "hybrid: thread id %u too large",
                  ev.tid);
    VClock &svc = semaVc_[ev.lock];
    svc.join(nonLockVc_[ev.tid]);
    ++nonLockVc_[ev.tid][ev.tid];
}

void
HybridDetector::onSemaWait(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads, "hybrid: thread id %u too large",
                  ev.tid);
    auto it = semaVc_.find(ev.lock);
    if (it != semaVc_.end())
        nonLockVc_[ev.tid].join(it->second);
}

void
HybridDetector::onCondSignal(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads, "hybrid: thread id %u too large",
                  ev.tid);
    VClock &cvc = condVc_[ev.lock];
    cvc.join(nonLockVc_[ev.tid]);
    ++nonLockVc_[ev.tid][ev.tid];
}

void
HybridDetector::onCondBroadcast(const SyncEvent &ev)
{
    onCondSignal(ev);
}

void
HybridDetector::onCondWait(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads, "hybrid: thread id %u too large",
                  ev.tid);
    auto it = condVc_.find(ev.lock);
    if (it != condVc_.end())
        nonLockVc_[ev.tid].join(it->second);
}

void
HybridDetector::onAtomicStore(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads, "hybrid: thread id %u too large",
                  ev.tid);
    VClock &avc = atomVc_[ev.lock];
    avc.join(nonLockVc_[ev.tid]);
    ++nonLockVc_[ev.tid][ev.tid];
}

void
HybridDetector::onAtomicLoad(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads, "hybrid: thread id %u too large",
                  ev.tid);
    auto it = atomVc_.find(ev.lock);
    if (it != atomVc_.end())
        nonLockVc_[ev.tid].join(it->second);
}

} // namespace hard
