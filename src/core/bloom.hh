/**
 * @file
 * HARD's Bloom-filter vectors (BFVectors), paper §3.2 and Figure 4.
 *
 * A BFVector is a small fixed-width bit vector divided into four
 * parts. A lock address is mapped into the vector by slicing address
 * bits starting at bit 2 into four direct indices, one per part (for
 * the 16-bit vector: bits 2..9, two bits per part — exactly Figure 4).
 * Set union is bitwise OR, intersection is bitwise AND, and a set is
 * empty iff at least one part is all zero.
 */

#ifndef HARD_CORE_BLOOM_HH
#define HARD_CORE_BLOOM_HH

#include <cstdint>
#include <string>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace hard
{

/** A BFVector of 16 or 32 bits (4 parts of 4 or 8 bits). */
class BfVector
{
  public:
    /** Number of parts the vector is divided into (paper: 4). */
    static constexpr unsigned kParts = 4;

    /**
     * @param width_bits Total vector width; must be a multiple of 4
     * with a power-of-two part size (16 and 32 are the paper's
     * configurations).
     */
    explicit BfVector(unsigned width_bits = 16);

    /** @return a vector of @p width_bits with every bit set — the
     * "all possible locks" initial candidate set. */
    static BfVector allOnes(unsigned width_bits);

    /** @return the Figure 4 signature of @p lock at @p width_bits. */
    static BfVector signatureOf(Addr lock, unsigned width_bits);

    /**
     * @return the raw signature bits of @p lock (no object).
     *
     * Header-inline so layers below hard_core (the provenance
     * recorder used by the exact-lockset detector) can compute
     * signatures without a link dependency.
     */
    static std::uint32_t
    signatureBits(Addr lock, unsigned width_bits)
    {
        hard_fatal_if(width_bits % kParts != 0,
                      "bloom: width %u not divisible into 4 parts",
                      width_bits);
        const unsigned part = width_bits / kParts;
        hard_fatal_if(!isPowerOf2(part) || part < 2 || width_bits > 32,
                      "bloom: unsupported width %u", width_bits);
        const unsigned idx_bits = floorLog2(part);
        std::uint32_t sig = 0;
        // Figure 4: slice address bits starting at bit 2 into kParts
        // direct indices (16-bit: bits 2..9, 2 bits per part).
        for (unsigned p = 0; p < kParts; ++p) {
            unsigned first = 2 + p * idx_bits;
            unsigned idx = static_cast<unsigned>(
                bits(lock, first + idx_bits - 1, first));
            sig |= std::uint32_t{1} << (p * part + idx);
        }
        return sig;
    }

    /**
     * @return true iff a set represented by @p raw bits is empty at
     * @p width_bits, i.e. some part is all zero.
     */
    static bool rawSetEmpty(std::uint32_t raw, unsigned width_bits);

    /** Set every bit (candidate set := all possible locks). */
    void setAll();

    /** Clear every bit. */
    void clearAll();

    /** Set union (lock addition into a lock set). */
    BfVector &operator|=(const BfVector &o);

    /** Set intersection (candidate-set refinement). */
    BfVector &operator&=(const BfVector &o);

    /** @return true iff the represented set is empty (a race signal
     * when the vector is a candidate set in SharedModified). */
    bool setEmpty() const { return rawSetEmpty(bits_, width_); }

    /** @return true if every bit is set. */
    bool allSet() const;

    /**
     * Membership test: @return true if @p lock may be in the set
     * (Bloom filters have no false negatives on membership).
     */
    bool mayContain(Addr lock) const;

    std::uint32_t raw() const { return bits_; }
    unsigned width() const { return width_; }
    unsigned partBits() const { return width_ / kParts; }

    /** Replace the raw bits (masked to the width). */
    void setRaw(std::uint32_t raw);

    bool
    operator==(const BfVector &o) const
    {
        return width_ == o.width_ && bits_ == o.bits_;
    }

    /** @return e.g. "0101|0010|1000|0001" (part-separated, MSB first). */
    std::string toString() const;

  private:
    std::uint32_t bits_ = 0;
    unsigned width_ = 16;
};

/**
 * Analytic missing-race probability of §3.2: the chance that one
 * random lock collides with *all four* parts of a candidate set of
 * size @p m, for part length @p n:
 * CR_whole = (1 - ((n-1)/n)^m)^4.
 */
double bloomMissProbability(unsigned part_len, unsigned set_size);

} // namespace hard

#endif // HARD_CORE_BLOOM_HH
