#include "core/bloom.hh"

#include <cmath>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace hard
{

namespace
{

/** Mask covering the low @p width bits. */
std::uint32_t
widthMask(unsigned width)
{
    return width >= 32 ? 0xffffffffu
                       : ((std::uint32_t{1} << width) - 1);
}

/** Validate a vector width; returns bits per part. */
unsigned
checkWidth(unsigned width)
{
    hard_fatal_if(width % BfVector::kParts != 0,
                  "bloom: width %u not divisible into 4 parts", width);
    unsigned part = width / BfVector::kParts;
    hard_fatal_if(!isPowerOf2(part) || part < 2 || width > 32,
                  "bloom: unsupported width %u", width);
    return part;
}

} // namespace

BfVector::BfVector(unsigned width_bits) : width_(width_bits)
{
    checkWidth(width_bits);
}

BfVector
BfVector::allOnes(unsigned width_bits)
{
    BfVector v(width_bits);
    v.setAll();
    return v;
}

BfVector
BfVector::signatureOf(Addr lock, unsigned width_bits)
{
    BfVector v(width_bits);
    v.bits_ = signatureBits(lock, width_bits);
    return v;
}

bool
BfVector::rawSetEmpty(std::uint32_t raw, unsigned width_bits)
{
    const unsigned part = width_bits / kParts;
    const std::uint32_t part_mask = widthMask(part);
    for (unsigned p = 0; p < kParts; ++p) {
        if (((raw >> (p * part)) & part_mask) == 0)
            return true;
    }
    return false;
}

void
BfVector::setAll()
{
    bits_ = widthMask(width_);
}

void
BfVector::clearAll()
{
    bits_ = 0;
}

BfVector &
BfVector::operator|=(const BfVector &o)
{
    hard_panic_if(width_ != o.width_, "bloom: width mismatch %u vs %u",
                  width_, o.width_);
    bits_ |= o.bits_;
    return *this;
}

BfVector &
BfVector::operator&=(const BfVector &o)
{
    hard_panic_if(width_ != o.width_, "bloom: width mismatch %u vs %u",
                  width_, o.width_);
    bits_ &= o.bits_;
    return *this;
}

bool
BfVector::allSet() const
{
    return bits_ == widthMask(width_);
}

bool
BfVector::mayContain(Addr lock) const
{
    std::uint32_t sig = signatureBits(lock, width_);
    return (bits_ & sig) == sig;
}

void
BfVector::setRaw(std::uint32_t raw)
{
    bits_ = raw & widthMask(width_);
}

std::string
BfVector::toString() const
{
    const unsigned part = partBits();
    std::string s;
    for (unsigned b = width_; b-- > 0;) {
        s += (bits_ >> b) & 1 ? '1' : '0';
        if (b != 0 && b % part == 0)
            s += '|';
    }
    return s;
}

double
bloomMissProbability(unsigned part_len, unsigned set_size)
{
    hard_fatal_if(part_len < 2, "bloom: part length must be > 1");
    const double n = static_cast<double>(part_len);
    const double m = static_cast<double>(set_size);
    const double cr_part = 1.0 - std::pow((n - 1.0) / n, m);
    return std::pow(cr_part, 4.0);
}

} // namespace hard
