/**
 * @file
 * Hybrid lockset + happens-before detector — the paper's §7 future
 * work ("combine with the happens-before algorithm to prune false
 * alarms caused by other synchronizations"), in the spirit of
 * O'Callahan & Choi's hybrid detection and RaceTrack.
 *
 * The detector runs HARD's lockset protocol (BFVector candidate sets,
 * LState machine, Lock Register) unchanged, but additionally keeps
 * *non-lock* happens-before state: vector clocks advanced only by
 * barrier and semaphore (hand-crafted synchronization) edges, plus a
 * per-granule last-access epoch. A lockset violation is reported only
 * if the racing access is NOT ordered after the granule's previous
 * conflicting access by those non-lock edges. Lock edges are
 * deliberately excluded so the detector keeps lockset's
 * interleaving-insensitivity for lock-discipline bugs (Figure 1
 * still detects), while semaphore/barrier-ordered hand-offs (the
 * residual false-alarm source of §5.1) are pruned.
 */

#ifndef HARD_CORE_HYBRID_HH
#define HARD_CORE_HYBRID_HH

#include <array>
#include <unordered_map>

#include "core/hard_detector.hh"
#include "detectors/vclock.hh"

namespace hard
{

/** Hybrid HARD+happens-before detector (paper §7). */
class HybridDetector : public RaceDetector
{
  public:
    /**
     * @param name Detector name for reporting.
     * @param cfg The underlying HARD hardware configuration.
     */
    HybridDetector(const std::string &name, const HardConfig &cfg);

    void onRead(const MemEvent &ev) override;
    void onWrite(const MemEvent &ev) override;
    void onLockAcquire(const SyncEvent &ev) override;
    void onLockRelease(const SyncEvent &ev) override;
    void onBarrier(const BarrierEvent &ev) override;
    void onSemaPost(const SyncEvent &ev) override;
    void onSemaWait(const SyncEvent &ev) override;

    /** Rwlocks update the Lock Register mode-blind (see HardDetector);
     * their edges stay out of the non-lock clock domain so lock-
     * discipline bugs remain interleaving-insensitive. */
    void
    onRwLockAcquire(const SyncEvent &ev, bool writer) override
    {
        (void)writer;
        onLockAcquire(ev);
    }

    void
    onRwLockRelease(const SyncEvent &ev, bool writer) override
    {
        (void)writer;
        onLockRelease(ev);
    }

    /** Condvar and atomic release/acquire pairs are hand-crafted
     * (non-lock) synchronization, pruned exactly like semaphores. */
    void onCondSignal(const SyncEvent &ev) override;
    void onCondBroadcast(const SyncEvent &ev) override;
    void onCondWait(const SyncEvent &ev) override;
    void onAtomicStore(const SyncEvent &ev) override;
    void onAtomicLoad(const SyncEvent &ev) override;

    /** @return lockset violations suppressed by non-lock ordering. */
    std::uint64_t prunedAlarms() const { return pruned_; }

    const HardConfig &config() const { return cfg_; }

  private:
    /** Per-granule hybrid metadata. */
    struct Granule
    {
        /** Raw candidate-set bits; starts all-ones. */
        std::uint32_t bf = 0xffffffffu;
        LState state = LState::Virgin;
        ThreadId owner = invalidThread;
        /**
         * Per-thread clock of the last access to this granule, in
         * the non-lock vector-clock domain. This is the "more
         * hardware resource" the paper's Section 7 anticipates the
         * hybrid needs.
         */
        VClock accessClk{};
    };

    struct Line
    {
        std::array<Granule, 8> g{};
    };

    void access(const MemEvent &ev, bool write);

    HardConfig cfg_;
    MetaCache<Line> meta_;
    std::array<LockRegister, kMaxThreads> lockRegs_;
    /** Vector clocks advanced by non-lock edges only (barrier,
     * semaphore, condvar, atomic release/acquire). */
    std::array<VClock, kMaxThreads> nonLockVc_{};
    std::unordered_map<Addr, VClock> semaVc_;
    std::unordered_map<Addr, VClock> condVc_;
    std::unordered_map<Addr, VClock> atomVc_;
    std::uint64_t pruned_ = 0;
};

} // namespace hard

#endif // HARD_CORE_HYBRID_HH
