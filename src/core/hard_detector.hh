/**
 * @file
 * HARD — the paper's hardware lockset race detector (§3).
 *
 * Per cache line (or finer granule, Table 3) the detector keeps a
 * BFVector candidate set and an LState, stored in cache-geometry-
 * limited metadata (lost on L2 displacement, §3.6). Each hardware
 * context has a Lock Register/Counter Register pair (§3.3). Candidate
 * sets travel with coherence transfers and, when a read leaves a line
 * in Shared CState with a changed candidate set, are broadcast to the
 * other caches (§3.4) — which costs bus occupancy in overhead runs.
 * Barrier exits flash-reset every BFVector to all-ones (§3.5).
 */

#ifndef HARD_CORE_HARD_DETECTOR_HH
#define HARD_CORE_HARD_DETECTOR_HH

#include <array>
#include <optional>

#include "coherence/bus.hh"
#include "core/lock_register.hh"
#include "detectors/lockset_state.hh"
#include "detectors/meta_cache.hh"
#include "detectors/report.hh"
#include "detectors/vclock.hh"

namespace hard
{

class ProvRecorder;

/** Configuration of a HARD detector instance. */
struct HardConfig
{
    /** BFVector width in bits (Table 6 sweeps 16 vs 32). */
    unsigned bloomBits = 16;
    /** Candidate-set/LState granularity in bytes (Table 3: 4..32). */
    unsigned granularityBytes = 32;
    /**
     * Geometry of the metadata store, mirroring the simulated L2
     * (Tables 4/5 sweep its size from 128KB to 1MB).
     */
    CacheConfig metaGeometry{1024 * 1024, 8, 32, 0};
    /** Unbounded metadata (used by cost-effectiveness comparisons). */
    bool unbounded = false;
    /**
     * Most faithful §3.6 model: store metadata unbounded but drop a
     * line's metadata exactly when the *simulated* L2 displaces that
     * line (requires the onLineEvicted events of a live System or a
     * trace that recorded them). The default instead mirrors the L2
     * geometry inside the detector, which tracks data accesses only.
     */
    bool coupleToCaches = false;
    /** Apply the §3.5 barrier flash-reset. */
    bool barrierReset = true;
    /** Counter Register width per bit (paper: 2). */
    unsigned counterBits = 2;
    /**
     * Model the Lock/Counter Registers as *per-processor* structures
     * (the paper's actual hardware, §3.1) rather than per-thread.
     * Requires the OS to save and restore them on context switches
     * (the onContextSwitch hook); equivalent to per-thread registers
     * when that support works.
     */
    bool perCoreRegisters = false;
    /**
     * OS support for saving/restoring the per-processor registers on
     * a context switch. Disable only for failure injection: without
     * it, lock sets leak between threads sharing a core and the
     * detector mis-reports.
     */
    bool saveRestoreOnSwitch = true;

    /** @return a config with an L2-mirror of @p l2_bytes capacity. */
    static HardConfig
    withL2(std::uint64_t l2_bytes)
    {
        HardConfig cfg;
        cfg.metaGeometry.sizeBytes = l2_bytes;
        return cfg;
    }
};

/** HARD statistics of interest to the evaluation. */
struct HardStats
{
    /** Candidate-set broadcasts performed (§3.4). */
    std::uint64_t metaBroadcasts = 0;
    /** Metadata lines lost to displacement (§3.6). */
    std::uint64_t metadataEvictions = 0;
    /** Barrier flash-resets executed (§3.5). */
    std::uint64_t barrierResets = 0;
    /** Candidate-set intersections performed. */
    std::uint64_t intersections = 0;
};

/** The HARD hardware lockset detector. */
class HardDetector : public RaceDetector
{
  public:
    /**
     * @param name Detector name for reporting.
     * @param cfg Hardware configuration.
     * @param bus If non-null, metadata broadcasts occupy this bus —
     * enable only in overhead-measurement (Figure 8) runs.
     */
    HardDetector(const std::string &name, const HardConfig &cfg,
                 Bus *bus = nullptr);

    void onRead(const MemEvent &ev) override;
    void onWrite(const MemEvent &ev) override;
    void onLockAcquire(const SyncEvent &ev) override;
    void onLockRelease(const SyncEvent &ev) override;
    void onBarrier(const BarrierEvent &ev) override;
    void onContextSwitch(CoreId core, ThreadId from, ThreadId to,
                         Cycle at) override;
    void onLineEvicted(Addr line_addr, Cycle at) override;

    /**
     * Rwlocks feed the Lock Register mode-blind: the hardware sees
     * one lock-word RMW either way (§3.3 tracks acquires, not modes),
     * so a reader hold protects accesses exactly like a writer hold.
     * Software detectors that honor the mode can only have smaller
     * effective locksets, preserving hard ⊆ ideal containment.
     */
    void
    onRwLockAcquire(const SyncEvent &ev, bool writer) override
    {
        (void)writer;
        onLockAcquire(ev);
    }

    void
    onRwLockRelease(const SyncEvent &ev, bool writer) override
    {
        (void)writer;
        onLockRelease(ev);
    }

    /**
     * Mirror HardStats + metadata-store state into stats(), including
     * a BFVector-occupancy histogram (population count per tracked
     * granule) refilled from the resident metadata on each sync.
     */
    void syncStats() override;

    /** Probes: resident metadata lines, hit rate, broadcast volume. */
    void registerProbes(IntervalSampler &sampler) override;

    /** @return the Lock Register of thread @p tid's context. */
    const LockRegister &lockRegister(ThreadId tid) const;

    /** @return the LState of the granule containing @p addr, if its
     * metadata is resident. */
    std::optional<LState> lstateOf(Addr addr);

    /** @return the raw BFVector of the granule containing @p addr, if
     * resident. */
    std::optional<std::uint32_t> bfOf(Addr addr);

    const HardConfig &config() const { return cfg_; }
    const HardStats &hardStats() const { return stats_; }

    /**
     * Attach a provenance recorder (explain/prov.hh): every candidate-
     * set narrowing, report, metadata loss/refetch, broadcast and
     * flash-reset is logged, and emitted reports carry the granule's
     * last conflicting accessor in RaceReport::other. Null (the
     * default) keeps every hook a single pointer test — detection
     * output is byte-identical with no recorder attached.
     */
    void attachProvenance(ProvRecorder *prov) { prov_ = prov; }

  private:
    /** Per-granule hardware metadata (BFVector + LState + owner). */
    struct Granule
    {
        /** Raw candidate-set bits; starts all-ones ("all locks"). */
        std::uint32_t bf = 0xffffffffu;
        LState state = LState::Virgin;
        ThreadId owner = invalidThread;
    };

    /** One metadata line (up to 8 granules of >= 4 bytes in 32B). */
    struct Line
    {
        std::array<Granule, 8> g{};
    };

    void access(const MemEvent &ev, bool write);

    /** @return the Lock Register used for (thread @p tid, core
     * @p core) under the configured register model. */
    LockRegister &regFor(ThreadId tid, CoreId core);

    HardConfig cfg_;
    Bus *bus_;
    MetaCache<Line> meta_;
    /** Per-thread registers (also the OS save area in per-core mode). */
    std::array<LockRegister, kMaxThreads> lockRegs_;
    /** The physical per-processor registers (per-core mode). */
    std::array<LockRegister, kMaxThreads> coreRegs_;
    HardStats stats_;
    /** Provenance recorder; null unless an explain run attached one. */
    ProvRecorder *prov_ = nullptr;
};

} // namespace hard

#endif // HARD_CORE_HARD_DETECTOR_HH
