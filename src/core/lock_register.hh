/**
 * @file
 * The per-processor Lock Register and Counter Register of paper §3.3.
 *
 * The Lock Register holds the union of the BFVector signatures of all
 * locks currently held by the running thread. Because multiple locks
 * can hash onto the same bit, a bank of small saturating counters (one
 * per Lock Register bit, 2-bit in the paper) tracks how many held
 * locks set each bit: releasing a lock decrements its bits' counters
 * and clears a bit only when its counter reaches zero.
 */

#ifndef HARD_CORE_LOCK_REGISTER_HH
#define HARD_CORE_LOCK_REGISTER_HH

#include <cstdint>
#include <vector>

#include "core/bloom.hh"

namespace hard
{

/** Lock Register + Counter Register pair for one hardware context. */
class LockRegister
{
  public:
    /**
     * @param width_bits BFVector width (16 in the default design).
     * @param counter_bits Width of each saturating counter (paper: 2).
     */
    explicit LockRegister(unsigned width_bits = 16,
                          unsigned counter_bits = 2);

    /** Add @p lock to the lock set (lock acquire). */
    void acquire(Addr lock);

    /** Remove @p lock from the lock set (lock release). */
    void release(Addr lock);

    /** @return the current lock-set BFVector. */
    const BfVector &vector() const { return vec_; }

    /** @return the counter value for Lock Register bit @p bit. */
    unsigned counter(unsigned bit) const;

    /** @return the number of counters that have ever saturated. */
    std::uint64_t saturations() const { return saturations_; }

    /**
     * @return the bits whose counter has saturated since the last
     * reset(). A saturated counter has lost increments, so its bit may
     * be cleared early on release — the lock set then under-
     * approximates the held locks and candidate sets over-narrow
     * (provenance evidence for counter-saturation attribution).
     */
    std::uint32_t saturatedBits() const { return saturatedBits_; }

    /** Clear the registers (context switch / thread start). */
    void reset();

    unsigned width() const { return vec_.width(); }
    unsigned counterBits() const { return counterBits_; }

  private:
    BfVector vec_;
    std::vector<std::uint8_t> counters_;
    unsigned counterBits_;
    std::uint8_t maxCount_;
    std::uint64_t saturations_ = 0;
    std::uint32_t saturatedBits_ = 0;
};

} // namespace hard

#endif // HARD_CORE_LOCK_REGISTER_HH
