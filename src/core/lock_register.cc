#include "core/lock_register.hh"

#include "common/logging.hh"

namespace hard
{

LockRegister::LockRegister(unsigned width_bits, unsigned counter_bits)
    : vec_(width_bits), counterBits_(counter_bits)
{
    hard_fatal_if(counter_bits == 0 || counter_bits > 8,
                  "lock-register: bad counter width %u", counter_bits);
    counters_.assign(width_bits, 0);
    maxCount_ = static_cast<std::uint8_t>((1u << counter_bits) - 1);
}

void
LockRegister::acquire(Addr lock)
{
    std::uint32_t sig = BfVector::signatureBits(lock, vec_.width());
    for (unsigned b = 0; b < vec_.width(); ++b) {
        if (!((sig >> b) & 1))
            continue;
        if (counters_[b] < maxCount_) {
            ++counters_[b];
        } else {
            // Saturated: the count is lost; the bit becomes sticky.
            ++saturations_;
            saturatedBits_ |= std::uint32_t{1} << b;
        }
    }
    BfVector s(vec_.width());
    s.setRaw(sig);
    vec_ |= s;
}

void
LockRegister::release(Addr lock)
{
    std::uint32_t sig = BfVector::signatureBits(lock, vec_.width());
    std::uint32_t to_clear = 0;
    for (unsigned b = 0; b < vec_.width(); ++b) {
        if (!((sig >> b) & 1))
            continue;
        if (counters_[b] > 0)
            --counters_[b];
        if (counters_[b] == 0)
            to_clear |= std::uint32_t{1} << b;
    }
    vec_.setRaw(vec_.raw() & ~to_clear);
}

unsigned
LockRegister::counter(unsigned bit) const
{
    hard_panic_if(bit >= counters_.size(), "lock-register: bad bit %u",
                  bit);
    return counters_[bit];
}

void
LockRegister::reset()
{
    vec_.clearAll();
    counters_.assign(counters_.size(), 0);
    saturatedBits_ = 0;
}

} // namespace hard
