#include "core/hard_detector.hh"

#include <bit>
#include <utility>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "explain/prov.hh"
#include "telemetry/sampler.hh"
#include "telemetry/trace_event.hh"

namespace hard
{

HardDetector::HardDetector(const std::string &name, const HardConfig &cfg,
                           Bus *bus)
    : RaceDetector(name),
      cfg_(cfg),
      bus_(bus),
      meta_(cfg.metaGeometry, cfg.unbounded || cfg.coupleToCaches)
{
    const unsigned line = cfg_.metaGeometry.lineBytes;
    hard_fatal_if(cfg_.granularityBytes == 0 ||
                      cfg_.granularityBytes > line ||
                      line % cfg_.granularityBytes != 0,
                  "hard: granularity %u does not divide line size %u",
                  cfg_.granularityBytes, line);
    hard_fatal_if(line / cfg_.granularityBytes > 8,
                  "hard: more than 8 granules per line unsupported");
    lockRegs_.fill(LockRegister(cfg_.bloomBits, cfg_.counterBits));
    coreRegs_.fill(LockRegister(cfg_.bloomBits, cfg_.counterBits));
    stats().formula("metaHitRate", [this] {
        return Formula::ratio(meta_.hits(), meta_.lookups());
    });
}

LockRegister &
HardDetector::regFor(ThreadId tid, CoreId core)
{
    if (cfg_.perCoreRegisters) {
        hard_panic_if(core >= coreRegs_.size(), "hard: bad core %u",
                      core);
        return coreRegs_[core];
    }
    return lockRegs_[tid];
}

void
HardDetector::onLineEvicted(Addr line_addr, Cycle at)
{
    if (!cfg_.coupleToCaches)
        return;
    if (meta_.erase(line_addr)) {
        ++stats_.metadataEvictions;
        if (prov_)
            prov_->recordMetaLoss(cfg_.metaGeometry.lineAddr(line_addr),
                                  cfg_.metaGeometry.lineBytes, at);
        if (tracer_ && tracer_->wants(kTraceDetector)) {
            Json args = Json::object();
            args.set("line", line_addr);
            tracer_->instant(kTraceDetector, EventTracer::kDetectorTrack,
                             name() + ":meta-loss", at, std::move(args));
        }
    }
}

void
HardDetector::syncStats()
{
    RaceDetector::syncStats();
    StatGroup &g = stats();
    g.counter("barrierResets").set(stats_.barrierResets);
    g.counter("intersections").set(stats_.intersections);
    g.counter("metaBroadcasts").set(stats_.metaBroadcasts);
    g.counter("metaHits").set(meta_.hits());
    g.counter("metaLookups").set(meta_.lookups());
    g.counter("metaResident").set(meta_.residentLines());
    g.counter("metadataEvictions").set(stats_.metadataEvictions);

    // BFVector occupancy: population count of every tracked (non-
    // Virgin) resident granule's candidate set. Refilled from scratch
    // each sync — a snapshot, not an accumulation; bucket fills are
    // commutative, so unordered iteration stays deterministic.
    Histogram &occ = g.histogram("bfOccupancy", Histogram::Scale::Linear,
                                 1, 33);
    occ.reset();
    const std::uint32_t mask = cfg_.bloomBits < 32
        ? (std::uint32_t{1} << cfg_.bloomBits) - 1
        : ~std::uint32_t{0};
    meta_.forEach([&occ, mask](Addr, Line &line) {
        for (const Granule &gr : line.g) {
            if (gr.state != LState::Virgin)
                occ.sample(std::popcount(gr.bf & mask));
        }
    });
}

void
HardDetector::registerProbes(IntervalSampler &sampler)
{
    RaceDetector::registerProbes(sampler);
    sampler.addGauge(name() + ".metaResident",
                     [this] { return meta_.residentLines(); });
    sampler.addRatio(name() + ".metaHitRate",
                     [this] { return meta_.hits(); },
                     [this] { return meta_.lookups(); });
    sampler.addCounter(name() + ".metaBroadcasts",
                       [this] { return stats_.metaBroadcasts; });
}

void
HardDetector::onContextSwitch(CoreId core, ThreadId from, ThreadId to,
                              Cycle at)
{
    (void)at;
    if (!cfg_.perCoreRegisters || !cfg_.saveRestoreOnSwitch)
        return;
    hard_panic_if(core >= coreRegs_.size() || from >= kMaxThreads ||
                      to >= kMaxThreads,
                  "hard: bad context switch c%u %u->%u", core, from, to);
    // The OS saves the outgoing thread's Lock/Counter Registers and
    // restores the incoming thread's (§3.1: the registers belong to
    // the processor, the lock set belongs to the thread).
    lockRegs_[from] = coreRegs_[core];
    coreRegs_[core] = lockRegs_[to];
}

const LockRegister &
HardDetector::lockRegister(ThreadId tid) const
{
    hard_panic_if(tid >= kMaxThreads, "hard: thread id %u too large", tid);
    return lockRegs_[tid];
}

std::optional<LState>
HardDetector::lstateOf(Addr addr)
{
    Line *line = meta_.find(addr);
    if (line == nullptr)
        return std::nullopt;
    const Addr base = cfg_.metaGeometry.lineAddr(addr);
    return line->g[(addr - base) / cfg_.granularityBytes].state;
}

std::optional<std::uint32_t>
HardDetector::bfOf(Addr addr)
{
    Line *line = meta_.find(addr);
    if (line == nullptr)
        return std::nullopt;
    const Addr base = cfg_.metaGeometry.lineAddr(addr);
    std::uint32_t raw =
        line->g[(addr - base) / cfg_.granularityBytes].bf;
    // Mask to the configured width for presentation.
    if (cfg_.bloomBits < 32)
        raw &= (std::uint32_t{1} << cfg_.bloomBits) - 1;
    return raw;
}

void
HardDetector::access(const MemEvent &ev, bool write)
{
    hard_panic_if(ev.tid >= kMaxThreads, "hard: thread id %u too large",
                  ev.tid);

    std::uint64_t evictions_before = meta_.evictions();
    bool fresh = false;
    Addr victim = invalidAddr;
    Line &line =
        meta_.lookup(ev.addr, fresh, prov_ ? &victim : nullptr);
    stats_.metadataEvictions += meta_.evictions() - evictions_before;

    const unsigned gran = cfg_.granularityBytes;
    const Addr line_base = cfg_.metaGeometry.lineAddr(ev.addr);
    const Addr lo = alignDown(ev.addr, gran);
    const Addr hi = ev.addr + (ev.size ? ev.size : 1);
    const std::uint32_t lockset =
        regFor(ev.tid, ev.core).vector().raw();

    if (prov_) {
        if (victim != invalidAddr)
            prov_->recordMetaLoss(victim, cfg_.metaGeometry.lineBytes,
                                  ev.at);
        if (fresh)
            prov_->recordRefetch(line_base, cfg_.metaGeometry.lineBytes,
                                 ev.at);
    }
    const std::uint32_t sat_mask =
        prov_ ? regFor(ev.tid, ev.core).saturatedBits() : 0;

    bool changed = false;
    std::array<std::pair<Addr, std::uint32_t>, 8> bcast;
    std::size_t n_bcast = 0;
    for (Addr a = lo; a < hi; a += gran) {
        Granule &g = line.g[(a - line_base) / gran];
        if (prov_)
            prov_->noteAccess(a, ev.tid, ev.at);
        const LState state_before = g.state;
        LStateStep step = lstateAccess(g.state, g.owner, ev.tid, write);
        g.state = step.next;
        g.owner = step.owner;
        if (!step.updateCandidate)
            continue;
        // The expensive software set intersection is a single AND of
        // the candidate-set and Lock Register BFVectors (§3.2).
        std::uint32_t bf_before = g.bf;
        std::uint32_t new_bf = g.bf & lockset;
        ++stats_.intersections;
        if (new_bf != g.bf) {
            g.bf = new_bf;
            changed = true;
            if (prov_ && n_bcast < bcast.size())
                bcast[n_bcast++] = {a, new_bf};
        }
        if (prov_)
            prov_->recordNarrow(a, ev.tid, ev.site, write, ev.at,
                                state_before, g.state, bf_before,
                                lockset, g.bf, sat_mask);
        if (step.reportIfEmpty &&
            BfVector::rawSetEmpty(g.bf, cfg_.bloomBits)) {
            emit(ev.tid, a, gran, ev.site, write, ev.at,
                 prov_ ? prov_->lastOther(a) : invalidThread);
            if (prov_)
                prov_->recordReport(a, ev.tid, ev.site, write, ev.at);
        }
    }

    // §3.4: a read that leaves the line in Shared CState with a
    // changed candidate set broadcasts the new metadata so all valid
    // copies stay consistent.
    if (!write && changed && ev.outcome.stateAfter == CState::Shared &&
        ev.outcome.sharers > 1) {
        ++stats_.metaBroadcasts;
        if (prov_)
            for (std::size_t i = 0; i < n_bcast; ++i)
                prov_->recordBroadcast(bcast[i].first, ev.at,
                                       bcast[i].second);
        if (bus_ != nullptr)
            bus_->transact(TxnType::MetaBroadcast, ev.at);
    }
}

void
HardDetector::onRead(const MemEvent &ev)
{
    access(ev, false);
}

void
HardDetector::onWrite(const MemEvent &ev)
{
    access(ev, true);
}

void
HardDetector::onLockAcquire(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads, "hard: thread id %u too large",
                  ev.tid);
    regFor(ev.tid, ev.core).acquire(ev.lock);
}

void
HardDetector::onLockRelease(const SyncEvent &ev)
{
    hard_panic_if(ev.tid >= kMaxThreads, "hard: thread id %u too large",
                  ev.tid);
    regFor(ev.tid, ev.core).release(ev.lock);
}

void
HardDetector::onBarrier(const BarrierEvent &ev)
{
    if (!cfg_.barrierReset)
        return;
    // §3.5: "the accesses and their lock information before the
    // barrier are discarded". Flash-set every BFVector back to "all
    // possible locks" AND restart the LState tracking: pre-barrier
    // accesses are ordered against post-barrier ones by the barrier,
    // so both the lock evidence and the sharing history must go —
    // resetting only the BFVectors would leave the Figure 7 pattern
    // (cross-barrier hand-off with no locks) reported via the
    // persisting SharedModified state.
    meta_.forEach([](Addr, Line &line) {
        for (Granule &g : line.g) {
            g.bf = 0xffffffffu;
            g.state = LState::Virgin;
            g.owner = invalidThread;
        }
    });
    ++stats_.barrierResets;
    if (prov_)
        prov_->recordFlashReset(ev.at, ev.episode);
    if (tracer_ && tracer_->wants(kTraceDetector)) {
        Json args = Json::object();
        args.set("episode", ev.episode);
        args.set("resident", meta_.residentLines());
        tracer_->instant(kTraceDetector, EventTracer::kDetectorTrack,
                         name() + ":flash-reset", ev.at, std::move(args));
    }
}

} // namespace hard
