/**
 * @file
 * server — an extension workload modelling the server programs
 * (apache/mysql-style) the paper's §7 names as future evaluation
 * targets. Not part of the six-application reproduction tables.
 *
 * Structure: worker threads process request streams against
 *  - a connection table under per-bucket locks (hot, fine-grained);
 *  - a shared LRU object cache: bucket locks, plus a lock-free racy
 *    "hit counter" per entry (a benign race, as real servers have);
 *  - a global statistics block under one coarse lock (contended);
 *  - a log buffer appended under a log lock with cold, streaming
 *    writes (eviction-prone candidate sets);
 *  - request hand-off between a "listener" (thread 0) and the workers
 *    via semaphores — hand-crafted synchronization that lockset
 *    cannot interpret.
 * No barriers at all: server phases are pipelined, not bulk-
 * synchronous, which exercises HARD without its §3.5 reset.
 *
 * Two drive modes (WorkloadParams):
 *  - closed loop (default): a fixed, scaled request count per worker
 *    with a constant service gap — the original benchmark shape;
 *  - open loop (p.openLoop): a seeded exponential arrival process
 *    (mean p.arrivalMeanGap cycles) fills a p.openLoopWindow-cycle
 *    window per worker, and every p.churnPeriod requests a churn wave
 *    retires one connection, re-initializes its record, evicts a
 *    cache entry and migrates the hot cluster — the §7 production
 *    scenario: long-running request service whose working set drifts,
 *    keeping steady allocation/displacement pressure on the MetaCache.
 *
 * Footprint structure (bucket-lock count, hot-cluster span, log-buffer
 * sizing) is parameterized by scale and thread count so that
 * 16/32-core sweeps do not alias distinct threads into the same
 * granule sets (the old fixed 512 KiB log wrapped at 8 threads).
 */

#include <cmath>

#include "common/rng.hh"
#include "workloads/registry.hh"
#include "workloads/wl_util.hh"

namespace hard
{

Program
buildServer(const WorkloadParams &p)
{
    WorkloadBuilder b("server", p.numThreads);

    const std::uint64_t nconn = scaled(1024, p, 32);
    const std::uint64_t ncache = scaled(4096, p, 64);
    const std::uint64_t requests = scaled(3000, p, 64);
    const unsigned conn_bytes = 88;  // line-misaligned records
    const unsigned cache_bytes = 56; // line-misaligned entries
    // Footprint-coupled structure: scale the lock striping and the
    // hot-cluster span with the table, and give every thread its own
    // non-wrapping log region (the fixed 512 KiB buffer used to wrap
    // thread 8 back onto thread 0's granules).
    const unsigned nbucketlocks = static_cast<unsigned>(
        std::min<std::uint64_t>(512, scaled(64, p, 8)));
    const std::uint64_t hotspan = scaled(24, p, 8);
    // Rounded to the 64-byte append stride so per-thread regions (and
    // the wrap inside one) keep every log write line-aligned.
    const std::uint64_t logchunk =
        scaled(64 * 1024, p, 4 * 1024) & ~std::uint64_t{63};
    const std::uint64_t logbytes = logchunk * p.numThreads;

    const Addr conns = b.alloc("connections", nconn * conn_bytes, 32);
    const Addr cache = b.alloc("cache", ncache * cache_bytes, 32);
    const Addr gstats = b.alloc("globalStats", 32, 32);
    const Addr logbuf = b.alloc("logBuffer", logbytes, 32);
    const LockAddr slock = b.allocLock("statsLock");
    const LockAddr llock = b.allocLock("logLock");
    std::vector<LockAddr> connlock, cachelock;
    for (unsigned i = 0; i < nbucketlocks; ++i) {
        connlock.push_back(b.allocLock("connLock" + std::to_string(i)));
        cachelock.push_back(
            b.allocLock("cacheLock" + std::to_string(i)));
    }
    std::vector<Addr> req_sema;
    for (unsigned t = 0; t < p.numThreads; ++t)
        req_sema.push_back(b.allocSema("reqSema" + std::to_string(t)));

    UnpaddedStats stats(b, "workerStats", 3);

    const SiteId s_init = b.site("init.write");
    const SiteId s_acc = b.site("listener.accept.post");
    const SiteId s_wai = b.site("worker.accept.wait");
    const SiteId s_clk = b.site("conn.lock");
    const SiteId s_crd = b.site("conn.read");
    const SiteId s_cwr = b.site("conn.write");
    const SiteId s_klk = b.site("cache.lock");
    const SiteId s_krd = b.site("cache.read");
    const SiteId s_kwr = b.site("cache.write");
    const SiteId s_hit = b.site("cache.hitcount.racy");
    const SiteId s_slk = b.site("stats.lock");
    const SiteId s_srd = b.site("stats.read");
    const SiteId s_swr = b.site("stats.write");
    const SiteId s_llk = b.site("log.lock");
    const SiteId s_lwr = b.site("log.append.write");
    const SiteId s_chn = b.site("conn.churn.write");

    // Listener (thread 0) initializes the shared state, then posts
    // one batch of "accepted requests" per worker — the thread-start/
    // hand-off edges lockset cannot see.
    initRegion(b, conns, nconn * conn_bytes, 8, s_init);
    initRegion(b, cache, ncache * cache_bytes, 8, s_init);
    initRegion(b, gstats, 32, 8, s_init);
    for (unsigned t = 1; t < p.numThreads; ++t)
        b.semaPost(0, req_sema[t], s_acc);

    for (unsigned t = 0; t < p.numThreads; ++t) {
        Rng trng(p.seed * 389 + t * 41);
        if (t != 0)
            b.semaWait(t, req_sema[t], s_wai);

        std::uint64_t log_pos = t * logchunk;
        const std::uint64_t log_base = t * logchunk;
        std::uint64_t churn_base = 0;
        std::uint64_t arrived = 0; // open loop: window consumed so far
        for (std::uint64_t r = 0;; ++r) {
            if (p.openLoop) {
                // Exponential inter-arrival: the next request lands
                // -mean*ln(u) cycles after the previous one; stop when
                // the arrival window is exhausted.
                const double u =
                    static_cast<double>(trng.next64() >> 11) * 0x1.0p-53;
                Cycle gap = static_cast<Cycle>(std::llround(
                    -p.arrivalMeanGap * std::log1p(-u)));
                if (gap < 1)
                    gap = 1;
                arrived += gap;
                if (arrived > p.openLoopWindow)
                    break;
                b.compute(t, gap);
            } else if (r >= requests) {
                break;
            }

            // 1. Touch the connection record (per-bucket lock). The
            // working set is hot and clustered so threads collide; in
            // open-loop mode the cluster base migrates with churn.
            std::uint64_t c =
                (churn_base + r / 2 + trng.below(hotspan)) % nconn;
            LockAddr cl = connlock[c % nbucketlocks];
            b.lock(t, cl, s_clk);
            b.read(t, conns + c * conn_bytes, 8, s_crd);
            b.write(t, conns + c * conn_bytes + 16, 8, s_cwr);
            // Tail field: its line spills into the next record
            // (different bucket lock) — false sharing at 32B.
            b.write(t, conns + c * conn_bytes + 80, 8, s_cwr);
            b.unlock(t, cl, s_clk);

            // 2. Cache lookup under the bucket lock...
            std::uint64_t e = trng.below(ncache);
            LockAddr kl = cachelock[e % nbucketlocks];
            b.lock(t, kl, s_klk);
            b.read(t, cache + e * cache_bytes, 8, s_krd);
            if (r % 7 == 0)
                b.write(t, cache + e * cache_bytes + 8, 8, s_kwr);
            b.unlock(t, kl, s_klk);
            // ... but the hit counter is bumped lock-free (benign
            // race, as in real servers).
            b.read(t, cache + e * cache_bytes + 48, 8, s_hit);
            b.write(t, cache + e * cache_bytes + 48, 8, s_hit);

            // 3. Coarse global statistics.
            if (r % 4 == 1) {
                b.lock(t, slock, s_slk);
                b.read(t, gstats, 8, s_srd);
                b.write(t, gstats, 8, s_swr);
                b.unlock(t, slock, s_slk);
            }

            // 4. Log append: cold streaming writes under the log
            // lock — eviction-prone candidate sets (§3.6). Each
            // thread streams through its own log region.
            if (r % 16 == 3) {
                b.lock(t, llock, s_llk);
                for (unsigned w = 0; w < 4; ++w) {
                    b.write(t,
                            logbuf + log_base +
                                (log_pos - log_base) % logchunk,
                            8, s_lwr);
                    log_pos += 64;
                }
                b.unlock(t, llock, s_llk);
            }

            // 5. Open loop: connection churn. Retire one connection,
            // re-initialize its record (close + accept), evict a cache
            // entry, and migrate the hot cluster — the request/
            // connection turnover that keeps fresh granules flowing
            // through the MetaCache on a long-running server.
            if (p.openLoop && p.churnPeriod != 0 &&
                r % p.churnPeriod == p.churnPeriod - 1) {
                const std::uint64_t victim = (churn_base + t) % nconn;
                LockAddr vl = connlock[victim % nbucketlocks];
                b.lock(t, vl, s_clk);
                b.write(t, conns + victim * conn_bytes, 8, s_chn);
                b.write(t, conns + victim * conn_bytes + 16, 8, s_chn);
                b.write(t, conns + victim * conn_bytes + 32, 8, s_chn);
                b.unlock(t, vl, s_clk);
                const std::uint64_t ev =
                    (victim * 7 + trng.below(ncache)) % ncache;
                LockAddr el = cachelock[ev % nbucketlocks];
                b.lock(t, el, s_klk);
                b.write(t, cache + ev * cache_bytes, 8, s_kwr);
                b.unlock(t, el, s_klk);
                churn_base = (churn_base + hotspan) % nconn;
            }

            if (!p.openLoop)
                b.compute(t, 150);
            if (r % 8 == 0)
                stats.bump(b, t, 0);
        }
        stats.bump(b, t, 1);
        stats.bump(b, t, 2);
    }

    return b.finish();
}

} // namespace hard
