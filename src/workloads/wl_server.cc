/**
 * @file
 * server — an extension workload modelling the server programs
 * (apache/mysql-style) the paper's §7 names as future evaluation
 * targets. Not part of the six-application reproduction tables.
 *
 * Structure: worker threads process request streams against
 *  - a connection table under per-bucket locks (hot, fine-grained);
 *  - a shared LRU object cache: bucket locks, plus a lock-free racy
 *    "hit counter" per entry (a benign race, as real servers have);
 *  - a global statistics block under one coarse lock (contended);
 *  - a log buffer appended under a log lock with cold, streaming
 *    writes (eviction-prone candidate sets);
 *  - request hand-off between a "listener" (thread 0) and the workers
 *    via semaphores — hand-crafted synchronization that lockset
 *    cannot interpret.
 * No barriers at all: server phases are pipelined, not bulk-
 * synchronous, which exercises HARD without its §3.5 reset.
 */

#include "common/rng.hh"
#include "workloads/registry.hh"
#include "workloads/wl_util.hh"

namespace hard
{

Program
buildServer(const WorkloadParams &p)
{
    WorkloadBuilder b("server", p.numThreads);

    const std::uint64_t nconn = scaled(1024, p, 32);
    const std::uint64_t ncache = scaled(4096, p, 64);
    const std::uint64_t requests = scaled(3000, p, 64);
    const unsigned conn_bytes = 88;  // line-misaligned records
    const unsigned cache_bytes = 56; // line-misaligned entries
    const unsigned nbucketlocks = 64;

    const Addr conns = b.alloc("connections", nconn * conn_bytes, 32);
    const Addr cache = b.alloc("cache", ncache * cache_bytes, 32);
    const Addr gstats = b.alloc("globalStats", 32, 32);
    const Addr logbuf = b.alloc("logBuffer", 512 * 1024, 32);
    const LockAddr slock = b.allocLock("statsLock");
    const LockAddr llock = b.allocLock("logLock");
    std::vector<LockAddr> connlock, cachelock;
    for (unsigned i = 0; i < nbucketlocks; ++i) {
        connlock.push_back(b.allocLock("connLock" + std::to_string(i)));
        cachelock.push_back(
            b.allocLock("cacheLock" + std::to_string(i)));
    }
    std::vector<Addr> req_sema;
    for (unsigned t = 0; t < p.numThreads; ++t)
        req_sema.push_back(b.allocSema("reqSema" + std::to_string(t)));

    UnpaddedStats stats(b, "workerStats", 3);

    const SiteId s_init = b.site("init.write");
    const SiteId s_acc = b.site("listener.accept.post");
    const SiteId s_wai = b.site("worker.accept.wait");
    const SiteId s_clk = b.site("conn.lock");
    const SiteId s_crd = b.site("conn.read");
    const SiteId s_cwr = b.site("conn.write");
    const SiteId s_klk = b.site("cache.lock");
    const SiteId s_krd = b.site("cache.read");
    const SiteId s_kwr = b.site("cache.write");
    const SiteId s_hit = b.site("cache.hitcount.racy");
    const SiteId s_slk = b.site("stats.lock");
    const SiteId s_srd = b.site("stats.read");
    const SiteId s_swr = b.site("stats.write");
    const SiteId s_llk = b.site("log.lock");
    const SiteId s_lwr = b.site("log.append.write");

    // Listener (thread 0) initializes the shared state, then posts
    // one batch of "accepted requests" per worker — the thread-start/
    // hand-off edges lockset cannot see.
    initRegion(b, conns, nconn * conn_bytes, 8, s_init);
    initRegion(b, cache, ncache * cache_bytes, 8, s_init);
    initRegion(b, gstats, 32, 8, s_init);
    for (unsigned t = 1; t < p.numThreads; ++t)
        b.semaPost(0, req_sema[t], s_acc);

    for (unsigned t = 0; t < p.numThreads; ++t) {
        Rng trng(p.seed * 389 + t * 41);
        if (t != 0)
            b.semaWait(t, req_sema[t], s_wai);

        std::uint64_t log_pos = t * 64 * 1024;
        for (std::uint64_t r = 0; r < requests; ++r) {
            // 1. Touch the connection record (per-bucket lock). The
            // working set is hot and clustered so threads collide.
            std::uint64_t c = (r / 2 + trng.below(24)) % nconn;
            LockAddr cl = connlock[c % nbucketlocks];
            b.lock(t, cl, s_clk);
            b.read(t, conns + c * conn_bytes, 8, s_crd);
            b.write(t, conns + c * conn_bytes + 16, 8, s_cwr);
            // Tail field: its line spills into the next record
            // (different bucket lock) — false sharing at 32B.
            b.write(t, conns + c * conn_bytes + 80, 8, s_cwr);
            b.unlock(t, cl, s_clk);

            // 2. Cache lookup under the bucket lock...
            std::uint64_t e = trng.below(ncache);
            LockAddr kl = cachelock[e % nbucketlocks];
            b.lock(t, kl, s_klk);
            b.read(t, cache + e * cache_bytes, 8, s_krd);
            if (r % 7 == 0)
                b.write(t, cache + e * cache_bytes + 8, 8, s_kwr);
            b.unlock(t, kl, s_klk);
            // ... but the hit counter is bumped lock-free (benign
            // race, as in real servers).
            b.read(t, cache + e * cache_bytes + 48, 8, s_hit);
            b.write(t, cache + e * cache_bytes + 48, 8, s_hit);

            // 3. Coarse global statistics.
            if (r % 4 == 1) {
                b.lock(t, slock, s_slk);
                b.read(t, gstats, 8, s_srd);
                b.write(t, gstats, 8, s_swr);
                b.unlock(t, slock, s_slk);
            }

            // 4. Log append: cold streaming writes under the log
            // lock — eviction-prone candidate sets (§3.6).
            if (r % 16 == 3) {
                b.lock(t, llock, s_llk);
                for (unsigned w = 0; w < 4; ++w) {
                    b.write(t, logbuf + (log_pos % (512 * 1024)), 8,
                            s_lwr);
                    log_pos += 64;
                }
                b.unlock(t, llock, s_llk);
            }

            b.compute(t, 150);
            if (r % 8 == 0)
                stats.bump(b, t, 0);
        }
        stats.bump(b, t, 1);
        stats.bump(b, t, 2);
    }

    return b.finish();
}

} // namespace hard
