/**
 * @file
 * ocean — barrier-phased grid relaxation model.
 *
 * Structure mirrored from SPLASH-2 ocean: Jacobi-style sweeps over
 * several grids with barriers between phases, partitioned into
 * *column* blocks. Cross-phase neighbour sharing is ordered by the
 * barriers (the Figure 7 pattern HARD's reset must prune). Block
 * boundaries fall mid-line (block widths are not multiples of four
 * 8-byte columns), so within one phase adjacent threads write cells of
 * the same 32-byte line concurrently: false sharing that both lockset
 * and happens-before report, blowing ocean's false alarms up from ~1
 * at 4-byte granularity to tens at 32 bytes (Table 3). The only locks
 * protect the global residual and a cold checkpoint buffer. Several
 * grids and phases give the false sharing many distinct source sites,
 * matching the paper's source-level alarm counting.
 */

#include <array>

#include "workloads/registry.hh"
#include "workloads/wl_util.hh"

namespace hard
{

namespace
{

/** One Jacobi phase: dst[r][c] = f(src 5-point stencil, rhs). */
struct StencilPhase
{
    const char *tag;
    Addr src;
    Addr dst;
};

} // namespace

Program
buildOcean(const WorkloadParams &p)
{
    WorkloadBuilder b("ocean", p.numThreads);

    const std::uint64_t rows = scaled(256, p, 16);
    const std::uint64_t cols = 381; // 3048B rows: line-misaligned
    const unsigned iters = 2;
    const std::uint64_t row_bytes = cols * 8;
    const std::uint64_t grid_bytes = rows * row_bytes;

    const Addr u = b.alloc("u", grid_bytes, 32);
    const Addr pgrid = b.alloc("p", grid_bytes, 32);
    const Addr rhs = b.alloc("rhs", grid_bytes, 32);
    const Addr residual = b.alloc("residual", 8, 32);
    const Addr tstamp = b.alloc("timestamp", 8, 32);
    const Addr ckpt = b.alloc("checkpoint", 256 * 1024, 32);
    const LockAddr rlock = b.allocLock("residualLock");
    const LockAddr cklock = b.allocLock("ckptLock");
    const Addr bar = b.allocBarrier("sweepBarrier");

    const SiteId s_rl = b.site("residual.lock");
    const SiteId s_rr = b.site("residual.read");
    const SiteId s_rw = b.site("residual.write");
    const SiteId s_tw = b.site("timestamp.racy.write");
    const SiteId s_tr = b.site("timestamp.racy.read");
    const SiteId s_kl = b.site("ckpt.lock");
    const SiteId s_kw = b.site("ckpt.write");
    const SiteId s_bar = b.site("barrier");

    const StencilPhase phases[] = {
        {"laplace", u, pgrid},
        {"jacob", pgrid, u},
        {"relax", u, pgrid},
    };

    // Per-phase site labels (arrays x directions), so false sharing
    // surfaces as many distinct source-level alarms, as in the paper.
    // Real ocean touches each grid from dozens of distinct loops; we
    // model that static-site multiplicity by giving every row band its
    // own update site (8 bands), so boundary false sharing surfaces as
    // many distinct source-level alarms, as in the paper.
    constexpr unsigned kBands = 8;
    struct PhaseSites
    {
        SiteId c, n, s, e, w, r;
        std::array<SiteId, kBands> o;
    };
    std::vector<PhaseSites> psites;
    for (const StencilPhase &ph : phases) {
        PhaseSites ps;
        std::string tag = ph.tag;
        ps.c = b.site(tag + ".center.read");
        ps.n = b.site(tag + ".north.read");
        ps.s = b.site(tag + ".south.read");
        ps.e = b.site(tag + ".east.read");
        ps.w = b.site(tag + ".west.read");
        ps.r = b.site(tag + ".rhs.read");
        for (unsigned band = 0; band < kBands; ++band) {
            ps.o[band] = b.site(tag + ".band" + std::to_string(band) +
                                ".out.write");
        }
        psites.push_back(ps);
    }

    // Column-block partition with mid-line boundaries.
    std::vector<std::uint64_t> cstart(p.numThreads + 1);
    for (unsigned t = 0; t <= p.numThreads; ++t)
        cstart[t] = 1 + (cols - 2) * t / p.numThreads;

    auto cell = [&](Addr base, std::uint64_t r, std::uint64_t c) {
        return base + r * row_bytes + c * 8;
    };

    const SiteId s_init = b.site("init.write");

    // Master-thread initialization of the reduction scalar and the
    // checkpoint buffer, barrier-ordered (the grids themselves are
    // written by their owners first, which is initialization enough).
    b.write(0, residual, 8, s_init);
    initRegion(b, ckpt, 256 * 1024, 256, s_init);
    b.barrierAll(bar, s_bar);
    const SiteId s_warm = b.site("startup.sweep.read");
    warmRegion(b, residual, 8, 8, s_warm);
    warmRegion(b, ckpt, 256 * 1024, 256, s_warm);
    b.barrierAll(bar, s_bar);

    for (unsigned it = 0; it < iters; ++it) {
        b.write(0, tstamp, 8, s_tw); // benign racy progress stamp

        for (unsigned ph = 0; ph < 3; ++ph) {
            const StencilPhase &sp = phases[ph];
            const PhaseSites &ps = psites[ph];
            for (unsigned t = 0; t < p.numThreads; ++t) {
                if (t != 0 && ph == 0)
                    b.read(t, tstamp, 8, s_tr); // benign racy poll
                // Convergence check at phase start: every thread reads
                // the running residual under its lock (as the original
                // polls global sums), which also re-establishes the
                // variable's shared state early in each barrier epoch.
                b.lock(t, rlock, s_rl);
                b.read(t, residual, 8, s_rr);
                b.unlock(t, rlock, s_rl);
                for (std::uint64_t r = 1; r + 1 < rows; r += 3) {
                    for (std::uint64_t c = cstart[t]; c < cstart[t + 1];
                         c += 3) {
                        b.read(t, cell(sp.src, r, c), 8, ps.c);
                        b.read(t, cell(sp.src, r - 1, c), 8, ps.n);
                        b.read(t, cell(sp.src, r + 1, c), 8, ps.s);
                        b.read(t, cell(sp.src, r, c + 1), 8, ps.e);
                        b.read(t, cell(sp.src, r, c - 1), 8, ps.w);
                        b.read(t, cell(rhs, r, c), 8, ps.r);
                        b.write(t, cell(sp.dst, r, c), 8,
                                ps.o[r * kBands / rows]);
                    }
                    b.compute(t, 150);
                }
                // Per-phase residual reduction (the app's real lock).
                b.lock(t, rlock, s_rl);
                b.read(t, residual, 8, s_rr);
                b.write(t, residual, 8, s_rw);
                b.unlock(t, rlock, s_rl);

                // Once per iteration, checkpoint cold, lock-protected
                // diagnostics slices: full grid sweeps sit between
                // reuses, so these lines' candidate sets are displaced
                // from the L2-sized metadata (the paper's §3.6 missed-
                // race mechanism).
                if (it + 1 == iters && ph >= 1) {
                    // Checkpoint slices overlap between neighbouring
                    // threads (each covers its own and the next
                    // thread's stripe), so the region is genuinely
                    // cross-thread-shared within the phase — all under
                    // the checkpoint lock.
                    b.lock(t, cklock, s_kl);
                    for (unsigned w = 0; w < 8; ++w) {
                        unsigned stripe = (t + w / 4) % p.numThreads;
                        Addr a = ckpt +
                            ((ph * p.numThreads + stripe) * 2048 +
                             (w % 4) * 256) %
                                (256 * 1024);
                        b.write(t, a, 8, s_kw);
                    }
                    b.unlock(t, cklock, s_kl);
                }
            }
            b.barrierAll(bar, s_bar);
        }
    }

    return b.finish();
}

} // namespace hard
