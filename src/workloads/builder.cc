#include "workloads/builder.hh"

#include <map>
#include <set>

#include "common/bitops.hh"
#include "common/error.hh"
#include "common/logging.hh"

namespace hard
{

namespace
{
/** Base of the simulated data segment (arbitrary, line-aligned). */
constexpr Addr kDataBase = 0x10000000;
/** Line size assumed by the validator (matches Table 1). */
constexpr unsigned kLineBytes = 32;
} // namespace

WorkloadBuilder::WorkloadBuilder(std::string name, unsigned num_threads)
    : numThreads_(num_threads), brk_(kDataBase)
{
    hard_throw_if(num_threads == 0 || num_threads > 8, WorkloadError,
                  "workload '%s': unsupported thread count %u",
                  name.c_str(), num_threads);
    prog_.name = std::move(name);
    prog_.dataBase = kDataBase;
    prog_.threads.resize(num_threads);
    for (unsigned t = 0; t < num_threads; ++t)
        prog_.threads[t].tid = t;
}

Addr
WorkloadBuilder::alloc(const std::string &label, std::uint64_t bytes,
                       unsigned align)
{
    (void)label;
    hard_throw_if(bytes == 0, WorkloadError, "workload '%s': zero-size alloc",
                  prog_.name.c_str());
    hard_throw_if(!isPowerOf2(align), WorkloadError, "workload '%s': bad alignment %u",
                  prog_.name.c_str(), align);
    brk_ = alignUp(brk_, align);
    Addr base = brk_;
    brk_ += bytes;
    return base;
}

LockAddr
WorkloadBuilder::allocLock(const std::string &label)
{
    // Sync objects live on private lines so their coherence traffic
    // does not falsely share with data.
    LockAddr l = alloc(label, kLineBytes, kLineBytes);
    prog_.locks.push_back(l);
    return l;
}

Addr
WorkloadBuilder::allocBarrier(const std::string &label)
{
    Addr b = alloc(label, kLineBytes, kLineBytes);
    prog_.barriers.push_back(b);
    return b;
}

Addr
WorkloadBuilder::allocSema(const std::string &label)
{
    return alloc(label, kLineBytes, kLineBytes);
}

LockAddr
WorkloadBuilder::allocRwLock(const std::string &label)
{
    // A rwlock is one lock word to the hardware (HARD's Lock Register
    // tracks it mode-blind), so it registers like a mutex.
    LockAddr l = alloc(label, kLineBytes, kLineBytes);
    prog_.locks.push_back(l);
    return l;
}

Addr
WorkloadBuilder::allocCond(const std::string &label)
{
    return alloc(label, kLineBytes, kLineBytes);
}

Addr
WorkloadBuilder::allocAtomic(const std::string &label)
{
    return alloc(label, kLineBytes, kLineBytes);
}

SiteId
WorkloadBuilder::site(const std::string &name)
{
    return prog_.sites.intern(prog_.name + ":" + name);
}

void
WorkloadBuilder::checkThread(ThreadId t) const
{
    hard_panic_if(t >= numThreads_, "workload '%s': bad thread %u",
                  prog_.name.c_str(), t);
}

void
WorkloadBuilder::read(ThreadId t, Addr a, unsigned size, SiteId s)
{
    checkThread(t);
    prog_.threads[t].ops.push_back(opRead(a, size, s));
}

void
WorkloadBuilder::write(ThreadId t, Addr a, unsigned size, SiteId s)
{
    checkThread(t);
    prog_.threads[t].ops.push_back(opWrite(a, size, s));
}

void
WorkloadBuilder::compute(ThreadId t, Cycle cycles)
{
    checkThread(t);
    if (cycles == 0)
        return;
    prog_.threads[t].ops.push_back(opCompute(cycles));
}

void
WorkloadBuilder::lock(ThreadId t, LockAddr l, SiteId s)
{
    checkThread(t);
    prog_.threads[t].ops.push_back(opLock(l, s));
}

void
WorkloadBuilder::unlock(ThreadId t, LockAddr l, SiteId s)
{
    checkThread(t);
    prog_.threads[t].ops.push_back(opUnlock(l, s));
}

void
WorkloadBuilder::semaPost(ThreadId t, Addr sema, SiteId s)
{
    checkThread(t);
    prog_.threads[t].ops.push_back(opSemaPost(sema, s));
}

void
WorkloadBuilder::semaWait(ThreadId t, Addr sema, SiteId s)
{
    checkThread(t);
    prog_.threads[t].ops.push_back(opSemaWait(sema, s));
}

void
WorkloadBuilder::rdlock(ThreadId t, LockAddr l, SiteId s)
{
    checkThread(t);
    prog_.threads[t].ops.push_back(opRwRdLock(l, s));
}

void
WorkloadBuilder::rdunlock(ThreadId t, LockAddr l, SiteId s)
{
    checkThread(t);
    prog_.threads[t].ops.push_back(opRwRdUnlock(l, s));
}

void
WorkloadBuilder::wrlock(ThreadId t, LockAddr l, SiteId s)
{
    checkThread(t);
    prog_.threads[t].ops.push_back(opRwWrLock(l, s));
}

void
WorkloadBuilder::wrunlock(ThreadId t, LockAddr l, SiteId s)
{
    checkThread(t);
    prog_.threads[t].ops.push_back(opRwWrUnlock(l, s));
}

void
WorkloadBuilder::condSignal(ThreadId t, Addr cond, SiteId s)
{
    checkThread(t);
    prog_.threads[t].ops.push_back(opCondSignal(cond, s));
}

void
WorkloadBuilder::condBroadcast(ThreadId t, Addr cond, SiteId s)
{
    checkThread(t);
    prog_.threads[t].ops.push_back(opCondBroadcast(cond, s));
}

void
WorkloadBuilder::condWait(ThreadId t, Addr cond, SiteId s)
{
    checkThread(t);
    prog_.threads[t].ops.push_back(opCondWait(cond, s));
}

void
WorkloadBuilder::atomicStore(ThreadId t, Addr a, SiteId s)
{
    checkThread(t);
    prog_.threads[t].ops.push_back(opAtomicStore(a, s));
}

void
WorkloadBuilder::atomicLoad(ThreadId t, Addr a, SiteId s)
{
    checkThread(t);
    prog_.threads[t].ops.push_back(opAtomicLoad(a, s));
}

void
WorkloadBuilder::barrier(ThreadId t, Addr barrier, SiteId s)
{
    checkThread(t);
    prog_.threads[t].ops.push_back(opBarrier(barrier, s));
}

void
WorkloadBuilder::barrierAll(Addr barrier, SiteId s)
{
    for (unsigned t = 0; t < numThreads_; ++t)
        prog_.threads[t].ops.push_back(opBarrier(barrier, s));
}

Program
WorkloadBuilder::finish()
{
    hard_throw_if(finished_, WorkloadError, "workload '%s': finish() called twice",
                  prog_.name.c_str());
    finished_ = true;
    prog_.dataLimit = brk_;

    // Validation.
    std::vector<std::vector<Addr>> barrier_seq(numThreads_);
    for (unsigned t = 0; t < numThreads_; ++t) {
        std::map<LockAddr, unsigned> held;
        // rwlock -> held mode ('r' or 'w'); absent when not held.
        std::map<LockAddr, char> rwHeld;
        for (const Op &op : prog_.threads[t].ops) {
            switch (op.type) {
              case OpType::Read:
              case OpType::Write: {
                hard_throw_if(op.addr < prog_.dataBase ||
                                  op.addr + op.size > prog_.dataLimit, WorkloadError,
                              "workload '%s': thread %u access %llx "
                              "outside allocated data",
                              prog_.name.c_str(), t,
                              static_cast<unsigned long long>(op.addr));
                Addr line = alignDown(op.addr, kLineBytes);
                hard_throw_if(alignDown(op.addr + op.size - 1,
                                        kLineBytes) != line, WorkloadError,
                              "workload '%s': thread %u access %llx+%u "
                              "crosses a line",
                              prog_.name.c_str(), t,
                              static_cast<unsigned long long>(op.addr),
                              op.size);
                break;
              }
              case OpType::Lock:
                ++held[op.addr];
                hard_throw_if(held[op.addr] > 1, WorkloadError,
                              "workload '%s': thread %u re-acquires lock",
                              prog_.name.c_str(), t);
                break;
              case OpType::Unlock:
                hard_throw_if(held[op.addr] == 0, WorkloadError,
                              "workload '%s': thread %u unlocks unheld "
                              "lock",
                              prog_.name.c_str(), t);
                --held[op.addr];
                break;
              case OpType::RwRdLock:
              case OpType::RwWrLock:
                hard_throw_if(rwHeld.count(op.addr) != 0, WorkloadError,
                              "workload '%s': thread %u re-acquires "
                              "rwlock %llx",
                              prog_.name.c_str(), t,
                              static_cast<unsigned long long>(op.addr));
                rwHeld[op.addr] =
                    op.type == OpType::RwWrLock ? 'w' : 'r';
                break;
              case OpType::RwRdUnlock:
              case OpType::RwWrUnlock: {
                const char mode =
                    op.type == OpType::RwWrUnlock ? 'w' : 'r';
                auto it = rwHeld.find(op.addr);
                hard_throw_if(it == rwHeld.end() || it->second != mode,
                              WorkloadError,
                              "workload '%s': thread %u %c-unlocks "
                              "rwlock %llx it does not %c-hold",
                              prog_.name.c_str(), t, mode,
                              static_cast<unsigned long long>(op.addr),
                              mode);
                rwHeld.erase(it);
                break;
              }
              case OpType::Barrier:
                hard_throw_if((!held.empty() &&
                                  [&held] {
                                      for (auto &kv : held)
                                          if (kv.second)
                                              return true;
                                      return false;
                                  }()) ||
                                  !rwHeld.empty(), WorkloadError,
                              "workload '%s': thread %u reaches barrier "
                              "holding a lock",
                              prog_.name.c_str(), t);
                barrier_seq[t].push_back(op.addr);
                break;
              default:
                break;
            }
        }
        for (const auto &kv : held) {
            hard_throw_if(kv.second != 0, WorkloadError,
                          "workload '%s': thread %u ends holding lock "
                          "%llx",
                          prog_.name.c_str(), t,
                          static_cast<unsigned long long>(kv.first));
        }
        hard_throw_if(!rwHeld.empty(), WorkloadError,
                      "workload '%s': thread %u ends holding rwlock %llx",
                      prog_.name.c_str(), t,
                      static_cast<unsigned long long>(
                          rwHeld.empty() ? 0 : rwHeld.begin()->first));
    }
    for (unsigned t = 1; t < numThreads_; ++t) {
        hard_throw_if(barrier_seq[t] != barrier_seq[0], WorkloadError,
                      "workload '%s': threads 0 and %u disagree on the "
                      "barrier sequence",
                      prog_.name.c_str(), t);
    }
    return std::move(prog_);
}

} // namespace hard
