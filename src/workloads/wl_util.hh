/**
 * @file
 * Small helpers shared by the workload generators.
 */

#ifndef HARD_WORKLOADS_WL_UTIL_HH
#define HARD_WORKLOADS_WL_UTIL_HH

#include <algorithm>
#include <cstdint>

#include "workloads/builder.hh"

namespace hard
{

/** Scale @p n by @p p.scale, clamped below by @p floor. */
inline std::uint64_t
scaled(std::uint64_t n, const WorkloadParams &p, std::uint64_t floor = 1)
{
    auto v = static_cast<std::uint64_t>(static_cast<double>(n) * p.scale);
    return std::max(v, floor);
}

/**
 * An intentionally unpadded per-thread statistics block: each thread
 * owns a few contiguous 4-byte counters, so at 32-byte granularity the
 * counters of different threads falsely share lines — the classic
 * false-alarm source called out in paper §3.6 ("False Sharing") and
 * visible in Table 3.
 */
class UnpaddedStats
{
  public:
    /**
     * @param b Builder to allocate from.
     * @param label Allocation label; also prefixes the site names.
     * @param fields Counters per thread (each 4 bytes, unpadded).
     */
    UnpaddedStats(WorkloadBuilder &b, const std::string &label,
                  unsigned fields)
        : fields_(fields)
    {
        base_ = b.alloc(label, 4ull * fields * b.numThreads(), 4);
        for (unsigned f = 0; f < fields; ++f)
            sites_.push_back(b.site(label + ".bump" + std::to_string(f)));
    }

    /** Emit a read-modify-write of field @p f of @p t's block. */
    void
    bump(WorkloadBuilder &b, ThreadId t, unsigned f)
    {
        Addr a = base_ + 4ull * (t * fields_ + f);
        b.read(t, a, 4, sites_[f]);
        b.write(t, a, 4, sites_[f]);
    }

  private:
    Addr base_ = 0;
    unsigned fields_;
    std::vector<SiteId> sites_;
};

/**
 * Master-thread initialization of a shared region: thread 0 writes one
 * 8-byte word every @p stride bytes across [base, base+bytes). SPLASH
 * applications initialize shared structures in the master before the
 * parallel phase; modelling it keeps variables out of the Virgin/
 * Exclusive first-touch window during measurement (and must be
 * followed by a barrier, as in the originals).
 */
inline void
initRegion(WorkloadBuilder &b, Addr base, std::uint64_t bytes,
           unsigned stride, SiteId site)
{
    for (Addr a = base; a + 8 <= base + bytes; a += stride)
        b.write(0, a, 8, site);
}

/**
 * Post-init warm-up: threads 1..N-1 each read a slice of the shared
 * region (one 8-byte read every @p stride bytes), lock-free. This
 * models the startup sweep real SPLASH workers do over shared
 * structures (reading bounds, tree roots, parameters) and moves every
 * granule out of the Exclusive first-touch state. It MUST be followed
 * by a barrier: the barrier orders the sweep for happens-before and
 * its candidate-set flash-reset (paper §3.5) clears the empty
 * candidate sets the lock-free reads would otherwise leave behind.
 */
inline void
warmRegion(WorkloadBuilder &b, Addr base, std::uint64_t bytes,
           unsigned stride, SiteId site)
{
    const unsigned nt = b.numThreads();
    if (nt < 2)
        return;
    const unsigned readers = nt - 1;
    std::uint64_t idx = 0;
    for (Addr a = base; a + 8 <= base + bytes; a += stride, ++idx)
        b.read(static_cast<ThreadId>(1 + idx % readers), a, 8, site);
}

} // namespace hard

#endif // HARD_WORKLOADS_WL_UTIL_HH
