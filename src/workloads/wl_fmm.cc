/**
 * @file
 * fmm — fast multipole method model.
 *
 * Structure mirrored from SPLASH-2 fmm: barrier-separated passes over
 * a box tree. The upward (multipole) pass hands partial results
 * between threads with hand-crafted semaphore signalling — safe but
 * opaque to lockset, the dominant false-alarm source that makes fmm
 * the noisiest app in Table 2 even in the ideal setup. The
 * interaction pass applies lock-protected accumulations to other
 * threads' boxes (hashed per-box locks). Boxes are 120 bytes
 * (line-misaligned) and per-thread counters are unpadded, adding the
 * Table 3 false-sharing sources. A particle store plus a cold
 * lock-protected "checkpoint" region stress the L2 sweep.
 */

#include "common/rng.hh"
#include "workloads/registry.hh"
#include "workloads/wl_util.hh"

namespace hard
{

Program
buildFmm(const WorkloadParams &p)
{
    WorkloadBuilder b("fmm", p.numThreads);

    const std::uint64_t nbox = scaled(2048, p, 64);
    const std::uint64_t npart = scaled(8192, p, 128);
    const unsigned box_bytes = 120; // deliberately line-misaligned
    const unsigned part_bytes = 64;
    const unsigned nboxlocks = 64;
    const unsigned iters = 2;

    const Addr boxes = b.alloc("boxes", nbox * box_bytes, 32);
    const Addr parts = b.alloc("particles", npart * part_bytes, 32);
    const Addr energy = b.alloc("energy", 8, 32);
    const Addr ckpt = b.alloc("checkpoint", 128 * 1024, 32);
    const LockAddr elock = b.allocLock("energyLock");
    const LockAddr cklock = b.allocLock("ckptLock");
    std::vector<LockAddr> boxlock;
    for (unsigned i = 0; i < nboxlocks; ++i)
        boxlock.push_back(b.allocLock("boxLock" + std::to_string(i)));
    std::vector<Addr> up_sema;
    for (unsigned t = 0; t < p.numThreads; ++t)
        up_sema.push_back(b.allocSema("upSema" + std::to_string(t)));
    const Addr bar = b.allocBarrier("passBarrier");

    UnpaddedStats stats(b, "stats", 4);

    const SiteId s_prd = b.site("p2m.particle.read");
    const SiteId s_bwr = b.site("p2m.ownbox.write");
    const SiteId s_pub = b.site("m2m.publish");
    const SiteId s_con = b.site("m2m.consume");
    const SiteId s_sig = b.site("m2m.post");
    const SiteId s_wai = b.site("m2m.wait");
    const SiteId s_mrg = b.site("m2m.merge.rw");
    const SiteId s_lrd = b.site("m2l.box.read");
    const SiteId s_lwr = b.site("m2l.ownbox.write");
    const SiteId s_ilk = b.site("interact.lock");
    const SiteId s_ihd = b.site("interact.header.read");
    const SiteId s_ird = b.site("interact.read");
    const SiteId s_iwr = b.site("interact.write");
    const SiteId s_itl = b.site("interact.tail.write");
    const SiteId s_elk = b.site("energy.lock");
    const SiteId s_erd = b.site("energy.read");
    const SiteId s_ewr = b.site("energy.write");
    const SiteId s_klk = b.site("ckpt.lock");
    const SiteId s_kwr = b.site("ckpt.write");
    const SiteId s_bar = b.site("barrier");

    const SiteId s_init = b.site("init.write");

    const std::uint64_t boxes_per_thread = nbox / p.numThreads;
    const std::uint64_t parts_per_thread = npart / p.numThreads;

    // Master-thread initialization of shared structures (box tree,
    // reduction scalar, checkpoint region), barrier-ordered.
    initRegion(b, boxes, nbox * box_bytes, 8, s_init);
    initRegion(b, ckpt, 128 * 1024, 64, s_init);
    b.write(0, energy, 8, s_init);
    b.barrierAll(bar, s_bar);
    const SiteId s_warm = b.site("startup.sweep.read");
    warmRegion(b, boxes, nbox * box_bytes, 8, s_warm);
    warmRegion(b, ckpt, 128 * 1024, 64, s_warm);
    warmRegion(b, energy, 8, 8, s_warm);
    b.barrierAll(bar, s_bar);

    for (unsigned it = 0; it < iters; ++it) {
        // P2M: read own particles, build own leaf boxes (exclusive).
        for (unsigned t = 0; t < p.numThreads; ++t) {
            // Energy convergence check at iteration start (locked
            // read, as the original polls global sums).
            b.lock(t, elock, s_elk);
            b.read(t, energy, 8, s_erd);
            b.unlock(t, elock, s_elk);
            for (std::uint64_t k = 0; k < parts_per_thread; ++k) {
                Addr part = parts + (t * parts_per_thread + k) * part_bytes;
                b.read(t, part, 8, s_prd);
                b.read(t, part + 8, 8, s_prd);
                Addr box = boxes +
                    (t * boxes_per_thread + k % boxes_per_thread) *
                        box_bytes;
                b.write(t, box, 8, s_bwr);
                if (k % 8 == 0)
                    b.compute(t, 30);
            }
            stats.bump(b, t, 0);
        }
        b.barrierAll(bar, s_bar);

        // M2M upward pass: each thread publishes the multipole of its
        // subtree root lock-free, then signals its neighbour, which
        // consumes it lock-free after the wait. Perfectly ordered by
        // the semaphores — and invisible to the lockset algorithm.
        for (unsigned t = 0; t < p.numThreads; ++t) {
            Addr root = boxes + t * boxes_per_thread * box_bytes;
            for (unsigned w = 0; w < 3; ++w)
                b.write(t, root + 32 + w * 8, 8, s_pub);
            b.semaPost(t, up_sema[t], s_sig);
        }
        for (unsigned t = 0; t < p.numThreads; ++t) {
            unsigned from = (t + 1) % p.numThreads;
            b.semaWait(t, up_sema[from], s_wai);
            Addr root = boxes + from * boxes_per_thread * box_bytes;
            for (unsigned w = 0; w < 3; ++w)
                b.read(t, root + 32 + w * 8, 8, s_con);
            // Fold the received multipole into the neighbour's root
            // merge field — lock-free but semaphore-ordered (each
            // root has exactly one consumer in the ring): safe, yet a
            // locking-discipline violation to the lockset algorithm.
            b.read(t, root + 56, 8, s_mrg);
            b.write(t, root + 56, 8, s_mrg);
            stats.bump(b, t, 1);
        }
        b.barrierAll(bar, s_bar);

        // M2L: read other boxes (frozen by the barrier), accumulate
        // into own boxes.
        for (unsigned t = 0; t < p.numThreads; ++t) {
            Rng trng(p.seed * 211 + t * 3 + it);
            for (std::uint64_t k = 0; k < boxes_per_thread; ++k) {
                Addr own = boxes + (t * boxes_per_thread + k) * box_bytes;
                for (unsigned w = 0; w < 6; ++w) {
                    std::uint64_t o = trng.below(nbox);
                    b.read(t, boxes + o * box_bytes + 64, 8, s_lrd);
                }
                b.write(t, own + 64, 8, s_lwr);
                b.compute(t, 50);
            }
            stats.bump(b, t, 2);
        }
        b.barrierAll(bar, s_bar);

        // Interaction (direct) pass: lock-protected accumulation into
        // arbitrary boxes.
        for (unsigned t = 0; t < p.numThreads; ++t) {
            Rng trng(p.seed * 977 + t * 13 + it);
            const std::uint64_t pairs = boxes_per_thread * 8;
            for (std::uint64_t k = 0; k < pairs; ++k) {
                // Interaction partners cluster around the sweep
                // frontier, giving cross-thread temporal overlap; a
                // quarter of the interactions hit the current hot
                // (large) box that every thread shares for a stretch.
                std::uint64_t j;
                if (k % 4 == 0)
                    j = ((k / 256) * 131 + 5) % nbox;
                else
                    j = (k + trng.below(48)) % nbox;
                Addr box = boxes + j * box_bytes;
                LockAddr l = boxlock[j % nboxlocks];
                b.lock(t, l, s_ilk);
                // Header read plus a tail-field update: the tail bytes
                // (108..112 of the 120-byte box) share a line with the
                // next box's header, which is guarded by a different
                // lock — line-granularity false sharing.
                b.read(t, box, 8, s_ihd);
                b.read(t, box + 96, 8, s_ird);
                b.write(t, box + 96, 8, s_iwr);
                b.write(t, box + 108, 4, s_itl);
                b.unlock(t, l, s_ilk);
                b.compute(t, 90);
            }
            // Cold checkpoint slices, lock-protected, overlapping
            // between neighbouring threads: long reuse distance makes
            // their candidate sets eviction-prone (§3.6).
            b.lock(t, cklock, s_klk);
            for (unsigned w = 0; w < 8; ++w) {
                unsigned stripe = (t + w / 4) % p.numThreads;
                Addr a = ckpt +
                    ((it * p.numThreads + stripe) * 512 + (w % 4) * 64) %
                        (128 * 1024 - 8);
                b.write(t, a, 8, s_kwr);
            }
            b.unlock(t, cklock, s_klk);
            stats.bump(b, t, 3);
        }

        // Global energy reduction.
        for (unsigned t = 0; t < p.numThreads; ++t) {
            b.lock(t, elock, s_elk);
            b.read(t, energy, 8, s_erd);
            b.write(t, energy, 8, s_ewr);
            b.unlock(t, elock, s_elk);
        }
        b.barrierAll(bar, s_bar);
    }

    return b.finish();
}

} // namespace hard
