#include "workloads/registry.hh"

#include "common/logging.hh"

namespace hard
{

const std::vector<WorkloadInfo> &
allWorkloads()
{
    static const std::vector<WorkloadInfo> table = {
        {"cholesky",
         "task-queue sparse Cholesky factorization: global queue lock, "
         "hashed per-column locks, semaphore-based column hand-off",
         buildCholesky},
        {"barnes",
         "Barnes-Hut N-body: barrier-phased tree build with hashed "
         "per-cell locks, force computation, global reductions",
         buildBarnes},
        {"fmm",
         "fast multipole method: barrier-phased passes over boxes with "
         "per-box locks and producer/consumer list hand-off",
         buildFmm},
        {"ocean",
         "barrier-phased red-black stencil relaxation on a misaligned "
         "grid with a lock-protected global residual reduction",
         buildOcean},
        {"water-nsquared",
         "O(n^2) molecular dynamics: per-molecule accumulation locks, "
         "barrier-separated phases, disciplined locking",
         buildWaterNsquared},
        {"raytrace",
         "ray tracer: lock-protected work-queue tile stealing, "
         "read-only scene, unsynchronized per-tile framebuffer writes",
         buildRaytrace},
    };
    return table;
}

const std::vector<WorkloadInfo> &
extensionWorkloads()
{
    static const std::vector<WorkloadInfo> table = {
        {"server",
         "request-processing server (apache/mysql class, paper's "
         "future work): per-bucket connection/cache locks, racy hit "
         "counters, coarse stats lock, cold log appends, semaphore "
         "request hand-off, no barriers",
         buildServer},
    };
    return table;
}

Program
buildWorkload(const std::string &name, const WorkloadParams &p)
{
    for (const WorkloadInfo &w : allWorkloads()) {
        if (name == w.name)
            return w.build(p);
    }
    for (const WorkloadInfo &w : extensionWorkloads()) {
        if (name == w.name)
            return w.build(p);
    }
    fatal("unknown workload '%s'", name.c_str());
}

} // namespace hard
