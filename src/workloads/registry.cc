#include "workloads/registry.hh"

#include "common/error.hh"

namespace hard
{

const std::vector<WorkloadInfo> &
allWorkloads()
{
    static const std::vector<WorkloadInfo> table = {
        {"cholesky",
         "task-queue sparse Cholesky factorization: global queue lock, "
         "hashed per-column locks, semaphore-based column hand-off",
         buildCholesky},
        {"barnes",
         "Barnes-Hut N-body: barrier-phased tree build with hashed "
         "per-cell locks, force computation, global reductions",
         buildBarnes},
        {"fmm",
         "fast multipole method: barrier-phased passes over boxes with "
         "per-box locks and producer/consumer list hand-off",
         buildFmm},
        {"ocean",
         "barrier-phased red-black stencil relaxation on a misaligned "
         "grid with a lock-protected global residual reduction",
         buildOcean},
        {"water-nsquared",
         "O(n^2) molecular dynamics: per-molecule accumulation locks, "
         "barrier-separated phases, disciplined locking",
         buildWaterNsquared},
        {"raytrace",
         "ray tracer: lock-protected work-queue tile stealing, "
         "read-only scene, unsynchronized per-tile framebuffer writes",
         buildRaytrace},
    };
    return table;
}

const std::vector<WorkloadInfo> &
extensionWorkloads()
{
    static const std::vector<WorkloadInfo> table = {
        {"server",
         "request-processing server (apache/mysql class, paper's "
         "future work): per-bucket connection/cache locks, racy hit "
         "counters, coarse stats lock, cold log appends, semaphore "
         "request hand-off, no barriers",
         buildServer},
        {"rwcache",
         "read-mostly sharded lookup table (extended sync grammar): "
         "per-bucket reader-writer locks with concurrent read holds, "
         "condvar init hand-off, atomic release-acquire epoch beacon, "
         "coarse stats mutex, no barriers",
         buildRwCache},
    };
    return table;
}

const std::vector<WorkloadInfo> &
faultWorkloads()
{
    static const std::vector<WorkloadInfo> table = {
        {"deadlock",
         "[fault-injection] structural deadlock: two threads block on "
         "semaphores that are never posted (detected immediately)",
         buildDeadlock},
        {"livelock",
         "[fault-injection] ABBA spin-lock cycle: both threads poll "
         "forever (detected by the forward-progress watchdog)",
         buildLivelock},
    };
    return table;
}

Program
buildWorkload(const std::string &name, const WorkloadParams &p)
{
    for (const WorkloadInfo &w : allWorkloads()) {
        if (name == w.name)
            return w.build(p);
    }
    for (const WorkloadInfo &w : extensionWorkloads()) {
        if (name == w.name)
            return w.build(p);
    }
    for (const WorkloadInfo &w : faultWorkloads()) {
        if (name == w.name)
            return w.build(p);
    }
    throw ConfigError(errfmt("unknown workload '%s'", name.c_str()));
}

} // namespace hard
