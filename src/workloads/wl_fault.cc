/**
 * @file
 * Fault-injection micro-workloads for the failure-containment layer.
 * Neither is part of the paper's evaluation set: both are deliberately
 * broken two-thread programs that pass the builder's *static* checks
 * (balanced locks, aligned barriers) yet can never finish at runtime.
 *
 *  - "deadlock": each thread blocks on a semaphore the other would
 *    only post *after* its own wait. Both end up in WaitSema with no
 *    schedulable thread left, so System::run() detects the structural
 *    deadlock immediately and throws DeadlockError.
 *  - "livelock": the classic ABBA cycle on spin locks. Each thread
 *    holds its first lock and polls the other's forever; spinning
 *    threads stay schedulable, so only the forward-progress watchdog
 *    (SimConfig::watchdogCycles) can catch it.
 */

#include "workloads/registry.hh"

namespace hard
{

Program
buildDeadlock(const WorkloadParams &)
{
    // Fixed two-thread shape regardless of requested thread count:
    // the hang needs exactly one wait-cycle, and extra threads would
    // only delay detection until they finish.
    WorkloadBuilder b("deadlock", 2);

    const Addr data = b.alloc("scratch", 64, 32);
    const LockAddr guard0 = b.allocLock("guard0");
    const LockAddr guard1 = b.allocLock("guard1");
    const Addr sem_a = b.allocSema("semA");
    const Addr sem_b = b.allocSema("semB");

    const SiteId s_warm = b.site("deadlock.warmup");
    const SiteId s_guard = b.site("deadlock.guard");
    const SiteId s_wait = b.site("deadlock.wait");
    const SiteId s_post = b.site("deadlock.post");

    // A little real work first so the failure happens mid-run, with
    // nonzero pc/op counts in the diagnostic snapshot.
    for (ThreadId t = 0; t < 2; ++t) {
        b.write(t, data + 8 * t, 8, s_warm);
        b.compute(t, 20);
        b.read(t, data + 8 * t, 8, s_warm);
    }

    // Each thread waits (while holding a lock, so the snapshot shows
    // held locks) for a token only the *other* thread's later post
    // would provide. Statically balanced; dynamically a cycle.
    b.lock(0, guard0, s_guard);
    b.semaWait(0, sem_a, s_wait);
    b.semaPost(0, sem_b, s_post);
    b.unlock(0, guard0, s_guard);

    b.lock(1, guard1, s_guard);
    b.semaWait(1, sem_b, s_wait);
    b.semaPost(1, sem_a, s_post);
    b.unlock(1, guard1, s_guard);

    return b.finish();
}

Program
buildLivelock(const WorkloadParams &)
{
    WorkloadBuilder b("livelock", 2);

    const Addr data = b.alloc("scratch", 64, 32);
    const LockAddr lock_a = b.allocLock("lockA");
    const LockAddr lock_b = b.allocLock("lockB");

    const SiteId s_warm = b.site("livelock.warmup");
    const SiteId s_outer = b.site("livelock.outer");
    const SiteId s_inner = b.site("livelock.inner");
    const SiteId s_body = b.site("livelock.body");

    for (ThreadId t = 0; t < 2; ++t) {
        b.write(t, data + 8 * t, 8, s_warm);
        b.compute(t, 20);
    }

    // ABBA: thread 0 takes A then B, thread 1 takes B then A. The
    // compute delay dwarfs a lock acquisition, so both threads are
    // guaranteed to hold their outer lock before either tries the
    // inner one. Spin probes retire no ops, so only the watchdog
    // notices.
    b.lock(0, lock_a, s_outer);
    b.compute(0, 2000);
    b.lock(0, lock_b, s_inner);
    b.write(0, data + 32, 8, s_body);
    b.unlock(0, lock_b, s_inner);
    b.unlock(0, lock_a, s_outer);

    b.lock(1, lock_b, s_outer);
    b.compute(1, 2000);
    b.lock(1, lock_a, s_inner);
    b.write(1, data + 40, 8, s_body);
    b.unlock(1, lock_a, s_inner);
    b.unlock(1, lock_b, s_outer);

    return b.finish();
}

} // namespace hard
