/**
 * @file
 * Registry of the six SPLASH-2-like workload models used in the
 * paper's evaluation (§4): cholesky, barnes, fmm, ocean,
 * water-nsquared and raytrace. Each generator reproduces the
 * synchronization structure, sharing pattern, layout and footprint of
 * its namesake (see DESIGN.md for the substitution rationale).
 */

#ifndef HARD_WORKLOADS_REGISTRY_HH
#define HARD_WORKLOADS_REGISTRY_HH

#include <string>
#include <vector>

#include "workloads/builder.hh"

namespace hard
{

/** Generator signature: build a Program from sizing parameters. */
using WorkloadFn = Program (*)(const WorkloadParams &);

/** One registered workload. */
struct WorkloadInfo
{
    const char *name;
    const char *description;
    WorkloadFn build;
};

/** @return all registered workloads, in the paper's Table 2 order. */
const std::vector<WorkloadInfo> &allWorkloads();

/**
 * @return extension workloads beyond the paper's six applications:
 * "server", the apache/mysql-style program class the paper's §7 names
 * as future evaluation targets, and "rwcache", a read-mostly sharded
 * table exercising the extended sync grammar (reader-writer locks,
 * condvar hand-off, atomic release-acquire publication).
 */
const std::vector<WorkloadInfo> &extensionWorkloads();

/**
 * @return deliberately-broken micro-workloads ("deadlock",
 * "livelock") used to exercise the failure-containment layer (the
 * deadlock watchdog, typed SimErrors and --keep-going batches). They
 * are buildable by name but excluded from allWorkloads() so sweep
 * defaults never include them.
 */
const std::vector<WorkloadInfo> &faultWorkloads();

/** Build workload @p name; throws ConfigError if unknown. */
Program buildWorkload(const std::string &name, const WorkloadParams &p);

/** @name Individual generators
 * @{
 */
Program buildCholesky(const WorkloadParams &p);
Program buildBarnes(const WorkloadParams &p);
Program buildFmm(const WorkloadParams &p);
Program buildOcean(const WorkloadParams &p);
Program buildWaterNsquared(const WorkloadParams &p);
Program buildRaytrace(const WorkloadParams &p);
Program buildServer(const WorkloadParams &p);
Program buildRwCache(const WorkloadParams &p);
Program buildDeadlock(const WorkloadParams &p);
Program buildLivelock(const WorkloadParams &p);
/** @} */

} // namespace hard

#endif // HARD_WORKLOADS_REGISTRY_HH
