/**
 * @file
 * Dynamic race injection, reproducing the paper's methodology (§4):
 * "omitting a randomly selected dynamic instance of a lock primitive
 * and the corresponding unlock primitive."
 *
 * Because workload programs are deterministic per-thread traces, every
 * static Lock op in a stream is exactly one dynamic lock acquire, so
 * selecting a dynamic instance is selecting one Lock op. The injector
 * removes the chosen Lock and its matching Unlock and records the
 * ground truth: the byte ranges and source sites accessed inside the
 * now-unprotected critical section. A detector "detects the bug" when
 * it reports a race overlapping that byte set.
 */

#ifndef HARD_WORKLOADS_INJECTOR_HH
#define HARD_WORKLOADS_INJECTOR_HH

#include <set>
#include <unordered_map>
#include <vector>

#include "sim/program.hh"

namespace hard
{

/** How a race was injected into the chosen critical section. */
enum class InjectionKind : std::uint8_t
{
    /** Mutex lock/unlock pair removed (the paper's §4 methodology). */
    ElideLock,
    /** Writer-mode rwlock acquire/release pair removed. */
    ElideRwLock,
    /** Writer-mode rwlock pair downgraded to reader mode: the
     * section's writes are now protected only by a read hold — a
     * discipline bug only mode-aware detectors can see. */
    DowngradeRwLock,
};

/** Ground truth describing one injected race. */
struct Injection
{
    /** False if no injectable critical section was found. */
    bool valid = false;
    /** What was done to the chosen section. */
    InjectionKind kind = InjectionKind::ElideLock;
    /** Thread whose lock/unlock pair was elided. */
    ThreadId tid = invalidThread;
    /** The elided (or downgraded) lock. */
    LockAddr lock = 0;
    /** Source site of the elided acquire. */
    SiteId lockSite = invalidSite;
    /** Index of the elided acquire among all Lock ops of the program. */
    std::size_t dynamicIndex = 0;
    /** Byte ranges accessed inside the elided critical section. */
    std::vector<std::pair<Addr, unsigned>> ranges;
    /** Source sites of the accesses inside the critical section. */
    std::set<SiteId> sites;
    /** True if the critical section contained a write. */
    bool hasWrite = false;

    /** @return true if [lo,lo+len) overlaps any ground-truth range. */
    bool
    overlaps(Addr lo, unsigned len) const
    {
        for (const auto &[base, sz] : ranges)
            if (base < lo + len && lo < base + sz)
                return true;
        return false;
    }
};

/**
 * Which granules of a program are genuinely shared: accessed by more
 * than one thread with at least one write. Precompute once per
 * workload and pass to injectRace() so only critical sections whose
 * elision can actually create a race are selected (all of the paper's
 * lock-protected data is shared this way).
 */
class SharedMap
{
  public:
    /** Scan @p prog's access streams (4-byte granules). */
    explicit SharedMap(const Program &prog);

    /** @return true if [a, a+size) touches a racy-capable granule. */
    bool conflicting(Addr a, unsigned size) const;

    /** @return number of conflicting granules found. */
    std::size_t conflictingGranules() const { return nConflicting_; }

  private:
    /** granule -> (accessor-thread mask, written flag in bit 15). */
    std::unordered_map<Addr, std::uint16_t> map_;
    std::size_t nConflicting_ = 0;
};

/**
 * Elide one random dynamic lock/unlock pair from @p prog. Writer-mode
 * rwlock sections are eligible alongside mutex sections; a chosen
 * rwlock pair is either elided or (half the time) downgraded to
 * reader mode, which breaks the write-protection discipline without
 * removing the synchronization events.
 *
 * Only critical sections containing at least one data access are
 * eligible; with a SharedMap the selection further requires a write to
 * cross-thread-shared data (so the elision creates a real potential
 * race, as the paper's injections do). The draw is retried a bounded
 * number of times otherwise. Deterministic in @p seed.
 *
 * @param prog Program to mutate in place.
 * @param seed Selection seed (one seed per injected "bug" run).
 * @param shared Optional shared-data map for eligibility filtering.
 * @return the ground truth (valid == false if nothing was injectable).
 */
Injection injectRace(Program &prog, std::uint64_t seed,
                     const SharedMap *shared = nullptr);

} // namespace hard

#endif // HARD_WORKLOADS_INJECTOR_HH
