/**
 * @file
 * raytrace — ray-tracing model.
 *
 * Structure mirrored from SPLASH-2 raytrace: a lock-protected work
 * queue hands out image tiles (modelling its distributed task-stealing
 * queues), rays read a large read-only scene (BVH + primitives), and
 * each ray writes its pixel into a shared framebuffer without locks —
 * safe because tile ownership is exclusive, but the 509-pixel rows
 * misalign tile edges against 32-byte lines, so adjacent tiles
 * falsely share framebuffer lines (raytrace's Table 3 false-alarm
 * explosion: ~2 at 4B to ~48 at 32B). A racy global ray counter is
 * the classic Figure 1 pattern: it is a true (benign) data race that
 * lockset always flags, while the frequent queue-lock chains
 * happens-before-order most of its dynamic occurrences. Per-object
 * hit counters under hashed locks and cold per-tile luminance sums
 * give the injector hot and eviction-prone critical sections.
 */

#include <array>

#include "common/rng.hh"
#include "workloads/registry.hh"
#include "workloads/wl_util.hh"

namespace hard
{

Program
buildRaytrace(const WorkloadParams &p)
{
    WorkloadBuilder b("raytrace", p.numThreads);

    const std::uint64_t width = 509; // line-misaligned rows (2036B)
    const std::uint64_t height = scaled(384, p, 32);
    const std::uint64_t nprim = scaled(24576, p, 256);
    const unsigned prim_bytes = 48;
    const std::uint64_t nobj = scaled(128, p, 8);
    const unsigned nobjlocks = 32;
    const std::uint64_t tile = 32;

    const Addr scene = b.alloc("scene", nprim * prim_bytes, 32);
    const Addr fb = b.alloc("framebuffer", width * height * 4, 32);
    const Addr qhead = b.alloc("queueHead", 8, 32);
    const Addr raycount = b.alloc("rayCount", 8, 32);
    const Addr hits = b.alloc("objHits", nobj * 8, 32);
    const Addr lumin = b.alloc("tileLuminance", 4096 * 8, 32);
    const LockAddr qlock = b.allocLock("queueLock");
    const LockAddr lumlock = b.allocLock("luminanceLock");
    std::vector<LockAddr> objlock;
    for (unsigned i = 0; i < nobjlocks; ++i)
        objlock.push_back(b.allocLock("objLock" + std::to_string(i)));

    UnpaddedStats stats(b, "stats", 2);

    const SiteId s_qlk = b.site("queue.lock");
    const SiteId s_qrd = b.site("queue.head.read");
    const SiteId s_qwr = b.site("queue.head.write");
    const SiteId s_srd = b.site("trace.scene.read");
    // Pixels are written from several shading paths (primary, shadow,
    // reflection, ... rays) — distinct static sites, so framebuffer
    // false sharing is counted at source level as in the paper.
    std::array<SiteId, 8> s_pwr;
    for (unsigned i = 0; i < s_pwr.size(); ++i)
        s_pwr[i] = b.site("trace.shade" + std::to_string(i) +
                          ".pixel.write");
    const SiteId s_rcr = b.site("raycount.racy.read");
    const SiteId s_rcw = b.site("raycount.racy.write");
    const SiteId s_hlk = b.site("objhits.lock");
    const SiteId s_hrd = b.site("objhits.read");
    const SiteId s_hwr = b.site("objhits.write");
    const SiteId s_llk = b.site("luminance.lock");
    const SiteId s_lrd = b.site("luminance.read");
    const SiteId s_lwr = b.site("luminance.write");

    const std::uint64_t tiles_x = (width + tile - 1) / tile;
    const std::uint64_t tiles_y = (height + tile - 1) / tile;
    const std::uint64_t ntiles = tiles_x * tiles_y;
    // Luminance table sized so each accumulator folds ~12 tiles.
    const std::uint64_t lum_slots = std::max<std::uint64_t>(4, ntiles / 12);

    const SiteId s_init = b.site("init.write");
    const SiteId s_go = b.site("start.gate");
    const Addr start_sema = b.allocSema("startGate");

    // Master-thread initialization of the shared statistics and the
    // queue head (the scene is read-only; the framebuffer is written
    // by tile owners first). Worker start is ordered by a semaphore
    // gate, modelling the thread-creation edge: visible to
    // happens-before, opaque to lockset — but safe for lockset too,
    // because the master's Exclusive ownership of the initialized
    // data makes the first worker access refine the candidate set.
    initRegion(b, hits, nobj * 8, 8, s_init);
    initRegion(b, lumin, 4096 * 8, 8, s_init);
    b.write(0, qhead, 8, s_init);
    b.write(0, raycount, 8, s_init);
    for (unsigned t = 1; t < p.numThreads; ++t)
        b.semaPost(0, start_sema, s_go);
    for (unsigned t = 1; t < p.numThreads; ++t)
        b.semaWait(t, start_sema, s_go);

    // Static pseudo-random tile ownership models the dynamic stealing
    // queue's spread while keeping streams deterministic.
    Rng owner_rng(p.seed ^ 0x4a73);
    std::vector<unsigned> owner(ntiles);
    for (std::uint64_t i = 0; i < ntiles; ++i)
        owner[i] = static_cast<unsigned>(owner_rng.below(p.numThreads));

    for (unsigned t = 0; t < p.numThreads; ++t) {
        Rng trng(p.seed * 53 + t * 29);
        std::uint64_t rays_since_pop = 0;
        for (std::uint64_t ti = 0; ti < ntiles; ++ti) {
            if (owner[ti] != t)
                continue;

            // Pop the tile from the global queue.
            b.lock(t, qlock, s_qlk);
            b.read(t, qhead, 8, s_qrd);
            b.write(t, qhead, 8, s_qwr);
            b.unlock(t, qlock, s_qlk);

            const std::uint64_t x0 = (ti % tiles_x) * tile;
            const std::uint64_t y0 = (ti / tiles_x) * tile;
            // Sample one ray per 4x4 pixel block; writes cover the
            // tile edges so misaligned tiles falsely share lines.
            for (std::uint64_t y = y0; y < y0 + tile && y < height;
                 y += 4) {
                for (std::uint64_t x = x0; x < x0 + tile && x < width;
                     x += 4) {
                    for (unsigned h = 0; h < 5; ++h) {
                        std::uint64_t pr = trng.below(nprim);
                        b.read(t, scene + pr * prim_bytes, 8, s_srd);
                    }
                    b.compute(t, 80);
                    b.write(t, fb + (y * width + x) * 4, 4,
                            s_pwr[(y / 4 + x / 4) % s_pwr.size()]);

                    // Global ray counter: benign race by design.
                    if (++rays_since_pop % 24 == 11) {
                        b.read(t, raycount, 8, s_rcr);
                        b.write(t, raycount, 8, s_rcw);
                    }
                    // Per-object hit statistics under hashed
                    // locks. Objects are hit in screen-space order, so
                    // all threads (which sweep tile indices together)
                    // update the same few objects around the same
                    // time.
                    if (rays_since_pop % 4 == 3) {
                        std::uint64_t o = (ti / 2 + trng.below(4)) % nobj;
                        LockAddr l = objlock[o % nobjlocks];
                        b.lock(t, l, s_hlk);
                        b.read(t, hits + o * 8, 8, s_hrd);
                        b.write(t, hits + o * 8, 8, s_hwr);
                        b.unlock(t, l, s_hlk);
                    }
                }
            }

            // Cold, lock-protected luminance accumulators: tiles from
            // different threads fold into a small shared table (long
            // reuse distance makes this the eviction-prone injection
            // target, §3.6).
            b.lock(t, lumlock, s_llk);
            b.read(t, lumin + (ti % lum_slots) * 8, 8, s_lrd);
            b.write(t, lumin + (ti % lum_slots) * 8, 8, s_lwr);
            b.unlock(t, lumlock, s_llk);

            stats.bump(b, t, 0);
        }
        stats.bump(b, t, 1);
    }

    return b.finish();
}

} // namespace hard
