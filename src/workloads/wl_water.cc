/**
 * @file
 * water-nsquared — O(n^2) molecular-dynamics model.
 *
 * Structure mirrored from SPLASH-2 water-nsquared: barrier-separated
 * phases of (intra-molecule work on owned molecules) -> (pairwise
 * inter-molecule force accumulation, locking the *destination*
 * molecule) -> (position update), plus a lock-protected global
 * kinetic-energy reduction. Locking is disciplined — no benign races,
 * no hand-crafted synchronization — so false alarms at 4-byte
 * granularity are ~zero (Table 3's water row). Molecule records are
 * 72 bytes (line-misaligned), so at 32-byte granularity neighbouring
 * molecules guarded by different locks falsely share lines, producing
 * the small residual alarm count the paper reports. The heavy
 * per-pair locking also builds the transitive happens-before chains
 * that make the happens-before baseline miss half the injected bugs
 * here (Table 2: 5/10 vs HARD's 9/10).
 */

#include "common/rng.hh"
#include "workloads/registry.hh"
#include "workloads/wl_util.hh"

namespace hard
{

Program
buildWaterNsquared(const WorkloadParams &p)
{
    WorkloadBuilder b("water-nsquared", p.numThreads);

    const std::uint64_t nmol = scaled(4096, p, 64);
    const unsigned mol_bytes = 72; // deliberately line-misaligned
    // The original allocates one lock per molecule; per-molecule locks
    // mean release->acquire chains between threads form only through
    // genuinely shared molecules.
    const unsigned nmollocks = 2048;
    const unsigned iters = 2;

    const Addr mols = b.alloc("molecules", nmol * mol_bytes, 32);
    const Addr kinetic = b.alloc("kinetic", 8, 32);
    const Addr virial = b.alloc("virial", 16, 32);
    const LockAddr klock = b.allocLock("kineticLock");
    const LockAddr vlock = b.allocLock("virialLock");
    std::vector<LockAddr> mollock;
    for (unsigned i = 0; i < nmollocks; ++i)
        mollock.push_back(b.allocLock("molLock" + std::to_string(i)));
    const Addr bar = b.allocBarrier("phaseBarrier");

    const SiteId s_ird = b.site("intra.pos.read");
    const SiteId s_iwr = b.site("intra.vel.write");
    const SiteId s_frd = b.site("force.own.read");
    const SiteId s_flk = b.site("force.dest.lock");
    const SiteId s_fdr = b.site("force.dest.read");
    const SiteId s_fdw = b.site("force.dest.write");
    const SiteId s_qrd = b.site("force.charge.read");
    const SiteId s_qwr = b.site("force.charge.write");
    const SiteId s_urd = b.site("update.force.read");
    const SiteId s_uwr = b.site("update.pos.write");
    const SiteId s_klk = b.site("kinetic.lock");
    const SiteId s_krd = b.site("kinetic.read");
    const SiteId s_kwr = b.site("kinetic.write");
    const SiteId s_vlk = b.site("virial.lock");
    const SiteId s_vrd = b.site("virial.read");
    const SiteId s_vwr = b.site("virial.write");
    const SiteId s_bar = b.site("barrier");

    const SiteId s_init = b.site("init.write");

    const std::uint64_t per_thread = nmol / p.numThreads;
    auto mol = [&](std::uint64_t i) { return mols + i * mol_bytes; };

    // Master-thread initialization of the molecule store and the
    // reduction scalars, barrier-ordered.
    initRegion(b, mols, nmol * mol_bytes, 8, s_init);
    b.write(0, kinetic, 8, s_init);
    b.write(0, virial, 8, s_init);
    b.barrierAll(bar, s_bar);
    const SiteId s_warm = b.site("startup.sweep.read");
    warmRegion(b, mols, nmol * mol_bytes, 8, s_warm);
    warmRegion(b, kinetic, 8, 8, s_warm);
    warmRegion(b, virial, 16, 8, s_warm);
    b.barrierAll(bar, s_bar);

    for (unsigned it = 0; it < iters; ++it) {
        // Intra-molecular phase: owned molecules only.
        for (unsigned t = 0; t < p.numThreads; ++t) {
            // Energy convergence checks at phase start (locked reads,
            // as the original polls the global sums each step).
            b.lock(t, klock, s_klk);
            b.read(t, kinetic, 8, s_krd);
            b.unlock(t, klock, s_klk);
            b.lock(t, vlock, s_vlk);
            b.read(t, virial, 8, s_vrd);
            b.unlock(t, vlock, s_vlk);
            for (std::uint64_t k = 0; k < per_thread; ++k) {
                Addr m = mol(t * per_thread + k);
                b.read(t, m, 8, s_ird);
                b.read(t, m + 8, 8, s_ird);
                b.write(t, m + 24, 8, s_iwr);
                if (k % 8 == 0)
                    b.compute(t, 40);
            }
        }
        b.barrierAll(bar, s_bar);

        // Pairwise force accumulation: read own molecule, lock and
        // update the destination molecule's force fields.
        for (unsigned t = 0; t < p.numThreads; ++t) {
            Rng trng(p.seed * 127 + t * 11 + it);
            const std::uint64_t pairs = per_thread * 12;
            for (std::uint64_t k = 0; k < pairs; ++k) {
                Addr own = mol(t * per_thread + k % per_thread);
                b.read(t, own, 8, s_frd);

                // Pair targets advance with the sweep (the original
                // iterates j = i+1..i+n/2), so different threads hit
                // the same molecules close together in time.
                std::uint64_t j = (k * 2 + trng.below(32)) % nmol;
                Addr dst = mol(j);
                LockAddr l = mollock[j % nmollocks];
                b.lock(t, l, s_flk);
                b.read(t, dst + 48, 8, s_fdr);
                b.write(t, dst + 48, 8, s_fdw);
                b.read(t, dst + 56, 8, s_fdr);
                b.write(t, dst + 56, 8, s_fdw);
                // The charge accumulator is the molecule's last field
                // (bytes 64..72): on every fourth molecule its line
                // spills into the next molecule's position fields, so
                // at 32-byte granularity this properly-locked update
                // falsely shares with the neighbour owner's accesses.
                b.read(t, dst + 64, 8, s_qrd);
                b.write(t, dst + 64, 8, s_qwr);
                b.unlock(t, l, s_flk);
                b.compute(t, 90);
            }
            // Global virial reduction once per thread per phase.
            b.lock(t, vlock, s_vlk);
            b.read(t, virial, 8, s_vrd);
            b.write(t, virial, 8, s_vwr);
            b.unlock(t, vlock, s_vlk);
        }
        b.barrierAll(bar, s_bar);

        // Position update + kinetic-energy reduction.
        for (unsigned t = 0; t < p.numThreads; ++t) {
            for (std::uint64_t k = 0; k < per_thread; ++k) {
                Addr m = mol(t * per_thread + k);
                b.read(t, m + 48, 8, s_urd);
                b.write(t, m, 8, s_uwr);
                b.write(t, m + 8, 8, s_uwr);
            }
            b.lock(t, klock, s_klk);
            b.read(t, kinetic, 8, s_krd);
            b.write(t, kinetic, 8, s_kwr);
            b.unlock(t, klock, s_klk);
        }
        b.barrierAll(bar, s_bar);
    }

    return b.finish();
}

} // namespace hard
