/**
 * @file
 * barnes — Barnes-Hut N-body model.
 *
 * Structure mirrored from SPLASH-2 barnes: barrier-separated
 * iterations of (tree build with hashed per-cell locks) -> (force
 * computation reading shared cells) -> (position update), plus a
 * lock-protected global bounding-box reduction. Tree cells are 40
 * bytes (misaligned with 32-byte lines), so adjacent cells guarded by
 * different locks falsely share lines — a Table 3 false-alarm source.
 * A racy "total cost" counter models the benign races the paper
 * attributes its ideal-setup false alarms to.
 */

#include "common/rng.hh"
#include "workloads/registry.hh"
#include "workloads/wl_util.hh"

namespace hard
{

Program
buildBarnes(const WorkloadParams &p)
{
    WorkloadBuilder b("barnes", p.numThreads);

    const std::uint64_t nbody = scaled(8192, p, 128);
    const std::uint64_t ncell = scaled(2048, p, 64);
    const unsigned body_bytes = 64;
    const unsigned cell_bytes = 40; // deliberately line-misaligned
    const unsigned ncelllocks = 128;
    const unsigned iters = 2;

    const Addr bodies = b.alloc("bodies", nbody * body_bytes, 32);
    const Addr cells = b.alloc("cells", ncell * cell_bytes, 32);
    const Addr bbox = b.alloc("bbox", 32, 32);
    const Addr cost = b.alloc("cost", 8, 32);
    const LockAddr glock = b.allocLock("globalLock");
    std::vector<LockAddr> celllock;
    for (unsigned i = 0; i < ncelllocks; ++i)
        celllock.push_back(b.allocLock("cellLock" + std::to_string(i)));
    const Addr bar = b.allocBarrier("phaseBarrier");

    UnpaddedStats stats(b, "stats", 2);

    const SiteId s_brd = b.site("body.pos.read");
    const SiteId s_clk = b.site("tree.cell.lock");
    const SiteId s_crd = b.site("tree.cell.read");
    const SiteId s_cwr = b.site("tree.cell.write");
    const SiteId s_cms = b.site("tree.cellmass.write");
    const SiteId s_frd = b.site("force.cell.read");
    const SiteId s_fwr = b.site("force.body.write");
    const SiteId s_urd = b.site("update.body.read");
    const SiteId s_uwr = b.site("update.body.write");
    const SiteId s_glk = b.site("bbox.lock");
    const SiteId s_grd = b.site("bbox.read");
    const SiteId s_gwr = b.site("bbox.write");
    const SiteId s_kra = b.site("cost.racy.add");
    const SiteId s_bar = b.site("barrier");

    const SiteId s_init = b.site("init.write");

    const std::uint64_t per_thread = nbody / p.numThreads;

    // Master-thread initialization of the shared cell pool and the
    // reduction scalars, ordered by the phase barrier.
    initRegion(b, cells, ncell * cell_bytes, 8, s_init);
    b.write(0, bbox, 8, s_init);
    b.write(0, bbox + 8, 8, s_init);
    b.write(0, cost, 8, s_init);
    b.barrierAll(bar, s_bar);
    const SiteId s_warm = b.site("startup.sweep.read");
    warmRegion(b, cells, ncell * cell_bytes, 8, s_warm);
    warmRegion(b, bbox, 16, 8, s_warm);
    b.barrierAll(bar, s_bar);

    for (unsigned it = 0; it < iters; ++it) {
        // Phase 0: global bounding-box reduction (lock-protected).
        for (unsigned t = 0; t < p.numThreads; ++t) {
            // Read-only check first (locked), as the original polls
            // the box bounds before extending them.
            b.lock(t, glock, s_glk);
            b.read(t, bbox, 8, s_grd);
            b.unlock(t, glock, s_glk);
            b.compute(t, 25);
            b.lock(t, glock, s_glk);
            b.read(t, bbox, 8, s_grd);
            b.write(t, bbox, 8, s_gwr);
            b.read(t, bbox + 8, 8, s_grd);
            b.write(t, bbox + 8, 8, s_gwr);
            b.unlock(t, glock, s_glk);
        }
        b.barrierAll(bar, s_bar);

        // Phase 1: tree build — insert bodies into locked cells.
        for (unsigned t = 0; t < p.numThreads; ++t) {
            Rng trng(p.seed * 31 + t * 7 + it);
            for (std::uint64_t k = 0; k < per_thread; ++k) {
                Addr body = bodies + (t * per_thread + k) * body_bytes;
                b.read(t, body, 8, s_brd);
                b.read(t, body + 8, 8, s_brd);

                // Insertion paths cluster spatially (bodies are sorted
                // by position in the original), so threads at similar
                // progress touch the same subtree cells concurrently.
                // Most insertions descend through the current hot
                // top-level cell (all threads hammer it for a long
                // stretch, as real barnes does near the root), then
                // land in a clustered leaf cell.
                std::uint64_t hot = ((k / 256) * 31 + 7) % ncell;
                LockAddr hl = celllock[hot % ncelllocks];
                b.lock(t, hl, s_clk);
                Addr hot_cell = cells + hot * cell_bytes;
                b.read(t, hot_cell, 8, s_crd);
                b.write(t, hot_cell + 16, 8, s_cwr);
                b.unlock(t, hl, s_clk);

                std::uint64_t c = (k / 2 + trng.below(40)) % ncell;
                Addr cell = cells + c * cell_bytes;
                LockAddr l = celllock[c % ncelllocks];
                b.lock(t, l, s_clk);
                b.read(t, cell, 8, s_crd);
                b.write(t, cell, 8, s_cwr);
                b.write(t, cell + 16, 8, s_cwr);
                // The subtree-mass field occupies the cell's last 8
                // bytes (32..40): its line spills into the next cell,
                // which is guarded by a *different* lock — line-level
                // false sharing between correctly locked updates.
                b.write(t, cell + 32, 8, s_cms);
                b.unlock(t, l, s_clk);
                b.compute(t, 20);
            }
        }
        b.barrierAll(bar, s_bar);

        // Phase 2: force computation — read shared cells (safe: the
        // tree is frozen by the barrier), accumulate into own bodies.
        for (unsigned t = 0; t < p.numThreads; ++t) {
            Rng trng(p.seed * 131 + t * 17 + it);
            for (std::uint64_t k = 0; k < per_thread; ++k) {
                Addr body = bodies + (t * per_thread + k) * body_bytes;
                for (unsigned w = 0; w < 4; ++w) {
                    std::uint64_t c = trng.below(ncell);
                    b.read(t, cells + c * cell_bytes + 8, 8, s_frd);
                }
                b.write(t, body + 24, 8, s_fwr);
                b.compute(t, 40);
                // Work-cost heuristic counter: racy by design (the
                // original uses it only as a load-balancing hint).
                if (k % 32 == 7) {
                    b.read(t, cost, 8, s_kra);
                    b.write(t, cost, 8, s_kra);
                }
            }
            stats.bump(b, t, 0);
        }
        b.barrierAll(bar, s_bar);

        // Phase 3: position update — own bodies only.
        for (unsigned t = 0; t < p.numThreads; ++t) {
            for (std::uint64_t k = 0; k < per_thread; ++k) {
                Addr body = bodies + (t * per_thread + k) * body_bytes;
                b.read(t, body + 24, 8, s_urd);
                b.write(t, body, 8, s_uwr);
                b.write(t, body + 8, 8, s_uwr);
            }
            stats.bump(b, t, 1);
        }
        b.barrierAll(bar, s_bar);
    }

    return b.finish();
}

} // namespace hard
