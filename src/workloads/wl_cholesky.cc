/**
 * @file
 * cholesky — task-queue sparse Cholesky factorization model.
 *
 * Structure mirrored from SPLASH-2 cholesky: a global task queue
 * protected by one lock hands out column tasks; finishing a column
 * applies lock-protected updates to a few pseudo-random later columns
 * (hashed per-column locks). A "supernode ready" hand-off uses
 * hand-crafted semaphore signalling (lockset-opaque), and a racy
 * progress counter plus unpadded per-thread statistics provide the
 * benign-race and false-sharing false-alarm sources seen in Table 2.
 * The ~1.5MB column store gives the L2 sweep (Tables 4/5) something
 * to displace.
 */

#include "common/rng.hh"
#include "workloads/registry.hh"
#include "workloads/wl_util.hh"

namespace hard
{

Program
buildCholesky(const WorkloadParams &p)
{
    WorkloadBuilder b("cholesky", p.numThreads);
    Rng rng(p.seed ^ 0xc401e5);

    const std::uint64_t ncol = scaled(4096, p, 64);
    // 47 doubles per column: deliberately not a multiple of the line
    // size, so a column's tail shares a line with the next column's
    // head — correctly locked updates under *different* column locks
    // falsely share at 32-byte granularity (Table 3).
    const unsigned col_bytes = 376;
    const unsigned ncollocks = 64;
    const std::uint64_t tasks_per_thread = ncol / p.numThreads;

    const Addr cols = b.alloc("columns", ncol * col_bytes, 32);
    const Addr head = b.alloc("queueHead", 8, 32);
    const Addr progress = b.alloc("progress", 8, 32);
    const LockAddr qlock = b.allocLock("queueLock");
    std::vector<LockAddr> collock;
    for (unsigned i = 0; i < ncollocks; ++i)
        collock.push_back(b.allocLock("colLock" + std::to_string(i)));
    const Addr super_sema = b.allocSema("superReady");
    const Addr super_buf = b.alloc("superBuf", 1024, 32);

    UnpaddedStats stats(b, "stats", 3);

    const SiteId s_qlk = b.site("queue.lock");
    const SiteId s_qrd = b.site("queue.head.read");
    const SiteId s_qwr = b.site("queue.head.write");
    const SiteId s_crd = b.site("col.read");
    const SiteId s_ulk = b.site("update.lock");
    const SiteId s_urd = b.site("update.read");
    const SiteId s_uwr = b.site("update.write");
    const SiteId s_prd = b.site("progress.racy.read");
    const SiteId s_pwr = b.site("progress.write");
    const SiteId s_pub = b.site("super.publish");
    const SiteId s_con = b.site("super.consume");
    const SiteId s_sig = b.site("super.post");
    const SiteId s_wai = b.site("super.wait");
    const SiteId s_acc = b.site("super.accumulate");

    const SiteId s_init = b.site("init.write");
    const SiteId s_go = b.site("start.gate");
    const Addr start_sema = b.allocSema("startGate");

    // Master-thread initialization of the shared matrix (as in the
    // original). Worker start is gated by a semaphore, modelling the
    // thread-creation edge (happens-before sees it; lockset relies on
    // the master's Exclusive ownership of the initialized columns).
    initRegion(b, cols, ncol * col_bytes, 8, s_init);
    b.write(0, head, 8, s_init);
    b.write(0, progress, 8, s_init);
    for (unsigned t = 1; t < p.numThreads; ++t)
        b.semaPost(0, start_sema, s_go);
    for (unsigned t = 1; t < p.numThreads; ++t)
        b.semaWait(t, start_sema, s_go);

    // Thread 0 fills the supernode buffer early and signals it ready
    // once per consumer (hand-crafted synchronization: safe, ordered
    // by the semaphore, but opaque to the lockset algorithm).
    for (unsigned w = 0; w < 16; ++w)
        b.write(0, super_buf + w * 64, 8, s_pub);
    for (unsigned t = 1; t < p.numThreads; ++t)
        b.semaPost(0, super_sema, s_sig);

    for (unsigned t = 0; t < p.numThreads; ++t) {
        Rng trng(p.seed * 7919 + t);
        for (std::uint64_t k = 0; k < tasks_per_thread; ++k) {
            // Pop a column task from the global queue.
            b.lock(t, qlock, s_qlk);
            b.read(t, head, 8, s_qrd);
            b.write(t, head, 8, s_qwr);
            // Progress is published under the queue lock...
            b.write(t, progress, 8, s_pwr);
            b.unlock(t, qlock, s_qlk);

            // The assigned column (statically partitioned, modelling
            // the dynamic queue's spread).
            std::uint64_t j = (k * p.numThreads + t) % ncol;
            Addr col_j = cols + j * col_bytes;

            // Factor the column: strided reads of its panel.
            for (unsigned w = 0; w < 12; ++w)
                b.read(t, col_j + w * 32, 8, s_crd);
            b.compute(t, 60);

            // Apply updates to a few later columns under their locks.
            // Two of the three updates hit the current supernode
            // frontier columns — hot columns that all threads hammer
            // for a ~256-task stretch (real factorizations have such
            // dense supernode updates), so conflicting accesses from
            // different threads land within cycles of each other. The
            // third update scatters over a trailing window, keeping
            // cold, eviction-prone targets in the mix.
            for (unsigned u = 0; u < 3; ++u) {
                std::uint64_t c;
                if (u < 2)
                    c = ((k / 256 + u) * 997 + 13) % ncol;
                else
                    c = (k * p.numThreads + 1 + trng.below(24)) % ncol;
                Addr col_c = cols + c * col_bytes;
                LockAddr l = collock[c % ncollocks];
                b.lock(t, l, s_ulk);
                for (unsigned w = 0; w < 4; ++w) {
                    Addr a = col_c + (trng.below(6)) * 32;
                    b.read(t, a, 8, s_urd);
                    b.write(t, a, 8, s_uwr);
                }
                b.unlock(t, l, s_ulk);
            }

            // ... but polled without it (benign race by design).
            if (k % 16 == 5)
                b.read(t, progress, 8, s_prd);

            stats.bump(b, t, 0);
            if (k % 8 == 0)
                stats.bump(b, t, 1);
        }

        // Consumers read the published supernode after the signal —
        // safe, lock-free, semaphore-ordered.
        if (t != 0) {
            b.semaWait(t, super_sema, s_wai);
            for (unsigned w = 0; w < 4; ++w)
                b.read(t, super_buf + w * 64, 8, s_con);
            // ... and folds its contribution into its own private
            // slice of the published supernode (lock-free and safe:
            // the write is ordered after the master's publication by
            // the semaphore and no sibling touches the slice) — the
            // hand-crafted-synchronization pattern that gives lockset
            // its extra false alarms in §5.1.
            Addr slice = super_buf + 256 + (t - 1) * 64;
            b.read(t, slice, 8, s_acc);
            b.write(t, slice, 8, s_acc);
            stats.bump(b, t, 2);
        }
    }

    return b.finish();
}

} // namespace hard
