/**
 * @file
 * Authoring API for SPLASH-2-like workload models.
 *
 * A workload is written as ordinary C++ that *emits* one deterministic
 * operation stream per thread (Pin-style trace generation). Crucially,
 * each thread's stream must not depend on the runtime interleaving, so
 * the same Program can be replayed under every detector and timing
 * configuration. The builder provides a bump allocator for the
 * simulated address space, lock/barrier/semaphore object allocation,
 * labelled source sites, and per-thread emission helpers, plus a
 * validator that checks lock balance and barrier alignment.
 */

#ifndef HARD_WORKLOADS_BUILDER_HH
#define HARD_WORKLOADS_BUILDER_HH

#include <string>
#include <vector>

#include "common/rng.hh"
#include "sim/program.hh"

namespace hard
{

/** Workload sizing/seed parameters shared by all generators. */
struct WorkloadParams
{
    /** Thread count (== simulated core count in the default setup). */
    unsigned numThreads = 4;
    /** Seed controlling layout/partitioning randomness. */
    std::uint64_t seed = 1;
    /**
     * Linear scale on footprint/iteration counts: 1.0 reproduces the
     * default evaluation size; smaller values speed up tests.
     */
    double scale = 1.0;
    /**
     * Open-loop production scenario (server workload): when true the
     * request loop is driven by a seeded exponential arrival process
     * (mean gap arrivalMeanGap, window openLoopWindow) with periodic
     * connection churn, instead of a fixed per-worker request count.
     * Off by default; generators other than "server" ignore it.
     * Enabling it changes the emitted Program, so fast-mode run keys
     * include these fields only when it is on (makeRunKey).
     */
    bool openLoop = false;
    /** Open loop: mean exponential inter-arrival gap (cycles). */
    double arrivalMeanGap = 300.0;
    /** Open loop: per-worker arrival window (cycles of service time). */
    std::uint64_t openLoopWindow = 500000;
    /**
     * Open loop: requests between connection-churn waves (0 = none).
     * Each wave retires a connection, re-initializes it and migrates
     * the hot cluster — steady metadata turnover on the MetaCache.
     */
    std::uint64_t churnPeriod = 64;
};

/** Builder for Program objects. */
class WorkloadBuilder
{
  public:
    WorkloadBuilder(std::string name, unsigned num_threads);

    /** @name Address-space layout
     * @{
     */
    /**
     * Allocate @p bytes of data aligned to @p align.
     * @param label Debug label (unused in layout, kept for tooling).
     */
    Addr alloc(const std::string &label, std::uint64_t bytes,
               unsigned align = 8);

    /** Allocate a lock word on its own cache line. */
    LockAddr allocLock(const std::string &label);

    /** Allocate a barrier object on its own cache line. */
    Addr allocBarrier(const std::string &label);

    /** Allocate a semaphore object on its own cache line. */
    Addr allocSema(const std::string &label);

    /** Allocate a reader-writer lock word on its own cache line. */
    LockAddr allocRwLock(const std::string &label);

    /** Allocate a condition variable on its own cache line. */
    Addr allocCond(const std::string &label);

    /** Allocate an atomic word on its own cache line. */
    Addr allocAtomic(const std::string &label);
    /** @} */

    /** Intern a static source-site label. */
    SiteId site(const std::string &name);

    /** @name Per-thread emission
     * @{
     */
    void read(ThreadId t, Addr a, unsigned size, SiteId s);
    void write(ThreadId t, Addr a, unsigned size, SiteId s);
    void compute(ThreadId t, Cycle cycles);
    void lock(ThreadId t, LockAddr l, SiteId s);
    void unlock(ThreadId t, LockAddr l, SiteId s);
    void semaPost(ThreadId t, Addr sema, SiteId s);
    void semaWait(ThreadId t, Addr sema, SiteId s);
    void rdlock(ThreadId t, LockAddr l, SiteId s);
    void rdunlock(ThreadId t, LockAddr l, SiteId s);
    void wrlock(ThreadId t, LockAddr l, SiteId s);
    void wrunlock(ThreadId t, LockAddr l, SiteId s);
    void condSignal(ThreadId t, Addr cond, SiteId s);
    void condBroadcast(ThreadId t, Addr cond, SiteId s);
    void condWait(ThreadId t, Addr cond, SiteId s);
    void atomicStore(ThreadId t, Addr a, SiteId s);
    void atomicLoad(ThreadId t, Addr a, SiteId s);
    /** @} */

    /**
     * Emit a barrier arrival into one thread's stream. All threads
     * must see the same barrier sequence (validated by finish());
     * prefer barrierAll() unless interleaving other per-thread ops.
     */
    void barrier(ThreadId t, Addr barrier, SiteId s);

    /** Emit the same barrier arrival into every thread's stream. */
    void barrierAll(Addr barrier, SiteId s);

    /**
     * Validate and return the finished Program.
     *
     * Validation rules (violations are fatal):
     * - every thread's Lock/Unlock ops are balanced and properly
     *   nested per lock;
     * - every thread's rwlock acquires/releases are balanced, with no
     *   re-acquisition in either mode while any mode is held;
     * - every thread observes the same sequence of barrier arrivals,
     *   and no thread reaches a barrier holding a mutex or rwlock;
     * - all accesses fall inside allocated data or sync objects and do
     *   not cross 32-byte line boundaries.
     */
    Program finish();

    unsigned numThreads() const { return numThreads_; }

  private:
    void checkThread(ThreadId t) const;

    Program prog_;
    unsigned numThreads_;
    Addr brk_;
    bool finished_ = false;
};

} // namespace hard

#endif // HARD_WORKLOADS_BUILDER_HH
