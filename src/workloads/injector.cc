#include "workloads/injector.hh"

#include "common/bitops.hh"
#include "common/error.hh"
#include "common/rng.hh"

namespace hard
{

namespace
{

/** Position of one Lock op: (thread index, op index). */
struct LockPos
{
    std::size_t thread;
    std::size_t op;
};

/** Collect the positions of every Lock and writer-mode rwlock acquire
 * in program order (reader-mode holds protect no writes, so eliding
 * one cannot inject the paper's kind of bug). */
std::vector<LockPos>
collectAcquires(const Program &prog)
{
    std::vector<LockPos> out;
    for (std::size_t t = 0; t < prog.threads.size(); ++t) {
        const auto &ops = prog.threads[t].ops;
        for (std::size_t i = 0; i < ops.size(); ++i)
            if (ops[i].type == OpType::Lock ||
                ops[i].type == OpType::RwWrLock)
                out.push_back({t, i});
    }
    return out;
}

/**
 * Find the release matching the acquire at @p pos (Unlock for Lock,
 * RwWrUnlock for RwWrLock). Builder validation guarantees no
 * re-acquisition, so the first matching release of the same lock
 * after the acquire is the match.
 */
std::size_t
findMatchingUnlock(const Program &prog, const LockPos &pos)
{
    const auto &ops = prog.threads[pos.thread].ops;
    const Addr lock = ops[pos.op].addr;
    const OpType rel = ops[pos.op].type == OpType::RwWrLock
                           ? OpType::RwWrUnlock
                           : OpType::Unlock;
    for (std::size_t i = pos.op + 1; i < ops.size(); ++i) {
        if (ops[i].type == rel && ops[i].addr == lock)
            return i;
    }
    throw WorkloadError(
        errfmt("injector: no matching unlock for lock %llx in thread %zu",
               static_cast<unsigned long long>(lock), pos.thread));
}

/**
 * Summarize the accesses inside (@p lo, @p hi) of thread @p t.
 * @return true if the section writes cross-thread-shared data (always
 * true for written sections when @p shared is null).
 */
bool
recordGroundTruth(const Program &prog, std::size_t t, std::size_t lo,
                  std::size_t hi, const SharedMap *shared, Injection &inj)
{
    const auto &ops = prog.threads[t].ops;
    bool conflicting_write = false;
    for (std::size_t i = lo + 1; i < hi; ++i) {
        const Op &op = ops[i];
        if (op.type != OpType::Read && op.type != OpType::Write)
            continue;
        inj.ranges.emplace_back(op.addr, op.size);
        inj.sites.insert(op.site);
        if (op.type == OpType::Write) {
            inj.hasWrite = true;
            if (shared == nullptr || shared->conflicting(op.addr, op.size))
                conflicting_write = true;
        }
    }
    return conflicting_write;
}

} // namespace

SharedMap::SharedMap(const Program &prog)
{
    constexpr unsigned kGran = 4;
    constexpr std::uint16_t kWritten = 1u << 15;
    for (const auto &thread : prog.threads) {
        const std::uint16_t tbit =
            static_cast<std::uint16_t>(1u << (thread.tid & 7));
        for (const Op &op : thread.ops) {
            if (op.type != OpType::Read && op.type != OpType::Write)
                continue;
            const Addr lo = alignDown(op.addr, kGran);
            const Addr hi = op.addr + (op.size ? op.size : 1);
            for (Addr a = lo; a < hi; a += kGran) {
                std::uint16_t &m = map_[a];
                m |= tbit;
                if (op.type == OpType::Write)
                    m |= kWritten;
            }
        }
    }
    for (const auto &kv : map_) {
        std::uint16_t accessors = kv.second & 0xff;
        if ((kv.second & kWritten) && popCount(accessors) > 1)
            ++nConflicting_;
    }
}

bool
SharedMap::conflicting(Addr a, unsigned size) const
{
    constexpr unsigned kGran = 4;
    constexpr std::uint16_t kWritten = 1u << 15;
    const Addr lo = alignDown(a, kGran);
    const Addr hi = a + (size ? size : 1);
    for (Addr g = lo; g < hi; g += kGran) {
        auto it = map_.find(g);
        if (it == map_.end())
            continue;
        std::uint16_t accessors = it->second & 0xff;
        if ((it->second & kWritten) && popCount(accessors) > 1)
            return true;
    }
    return false;
}

Injection
injectRace(Program &prog, std::uint64_t seed, const SharedMap *shared)
{
    std::vector<LockPos> acquires = collectAcquires(prog);
    Injection inj;
    if (acquires.empty())
        return inj;

    Rng rng(seed);
    // Up to 64 redraws looking for a critical section that can
    // actually race: it must access data, and preferably write it.
    constexpr unsigned kMaxTries = 64;
    std::size_t chosen = acquires.size();
    std::size_t chosen_unlock = 0;
    Injection best;
    for (unsigned attempt = 0; attempt < kMaxTries; ++attempt) {
        std::size_t idx = rng.below(acquires.size());
        const LockPos &pos = acquires[idx];
        std::size_t unlock = findMatchingUnlock(prog, pos);

        Injection cand;
        cand.valid = true;
        cand.tid = prog.threads[pos.thread].tid;
        cand.lock = prog.threads[pos.thread].ops[pos.op].addr;
        cand.lockSite = prog.threads[pos.thread].ops[pos.op].site;
        cand.dynamicIndex = idx;
        bool racy = recordGroundTruth(prog, pos.thread, pos.op, unlock,
                                      shared, cand);
        if (cand.ranges.empty())
            continue;
        if (!racy) {
            // Remember a non-racy section as a fallback but keep
            // looking for one whose elision creates a real race.
            if (!best.valid) {
                best = cand;
                chosen = idx;
                chosen_unlock = unlock;
            }
            continue;
        }
        best = std::move(cand);
        chosen = idx;
        chosen_unlock = unlock;
        break;
    }
    if (!best.valid)
        return best;

    auto &ops = prog.threads[acquires[chosen].thread].ops;
    if (ops[acquires[chosen].op].type == OpType::RwWrLock) {
        // Writer-mode rwlock: elide the pair, or downgrade it to
        // reader mode (the sync events stay, only the write
        // protection is lost). The draw stays deterministic in seed:
        // by this point the selection RNG state is fixed.
        if (rng.chance(0.5)) {
            best.kind = InjectionKind::DowngradeRwLock;
            ops[acquires[chosen].op].type = OpType::RwRdLock;
            ops[chosen_unlock].type = OpType::RwRdUnlock;
            return best;
        }
        best.kind = InjectionKind::ElideRwLock;
    }
    // Elide the pair (erase the later op first to keep indices valid).
    ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(chosen_unlock));
    ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(acquires[chosen].op));
    return best;
}

} // namespace hard
