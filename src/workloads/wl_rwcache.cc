/**
 * @file
 * rwcache — an extension workload exercising the extended sync
 * grammar (reader-writer locks, condition variables, atomic
 * release-acquire) end to end through the harness: fast-mode
 * recording, campaign sharding and race injection all run over these
 * event kinds via this model.
 *
 * Structure: a read-mostly lookup table sharded across per-bucket
 * reader-writer locks. Workers mostly take read holds (concurrent
 * readers share a bucket), occasionally upgrade to a writer-mode
 * update of an entry. A master thread initializes the shared state
 * and releases the workers with a condition-variable broadcast (the
 * latched hand-off lockset cannot interpret). Writers periodically
 * publish an epoch beacon with an atomic release store; readers poll
 * it with acquire loads — pure synchronization traffic with no
 * associated data access, so the model stays data-race-free for the
 * exact detectors. Global statistics live under one coarse mutex,
 * giving the §4 injector its classic mutex targets alongside the
 * writer-mode rwlock sections (elision and reader-mode downgrade).
 * No barriers: like server, phases are pipelined, so HARD runs
 * without its §3.5 reset.
 */

#include "common/rng.hh"
#include "workloads/registry.hh"
#include "workloads/wl_util.hh"

namespace hard
{

Program
buildRwCache(const WorkloadParams &p)
{
    WorkloadBuilder b("rwcache", p.numThreads);

    const std::uint64_t nentries = scaled(2048, p, 64);
    const std::uint64_t rounds = scaled(1500, p, 48);
    const unsigned entry_bytes = 48; // line-misaligned entries
    const unsigned nbuckets = 16;

    const Addr entries = b.alloc("entries", nentries * entry_bytes, 32);
    const Addr config = b.alloc("config", 64, 32);
    const Addr gstats = b.alloc("rwStats", 32, 32);
    const LockAddr slock = b.allocLock("statsLock");
    std::vector<LockAddr> bucket;
    for (unsigned i = 0; i < nbuckets; ++i)
        bucket.push_back(b.allocRwLock("bucketRw" + std::to_string(i)));
    const Addr ready = b.allocCond("readyCond");
    const Addr epoch = b.allocAtomic("epochFlag");

    UnpaddedStats stats(b, "rwWorkerStats", 2);

    const SiteId s_init = b.site("init.write");
    const SiteId s_rdy = b.site("init.ready.broadcast");
    const SiteId s_wai = b.site("worker.ready.wait");
    const SiteId s_rlk = b.site("bucket.rdlock");
    const SiteId s_lrd = b.site("entry.lookup.read");
    const SiteId s_wlk = b.site("bucket.wrlock");
    const SiteId s_uwr = b.site("entry.update.write");
    const SiteId s_pub = b.site("epoch.publish.store");
    const SiteId s_sub = b.site("epoch.poll.load");
    const SiteId s_slk = b.site("stats.lock");
    const SiteId s_srd = b.site("stats.read");
    const SiteId s_swr = b.site("stats.write");

    // Master initialization, then the condvar hand-off that releases
    // the workers (latched broadcast: arrival order cannot deadlock).
    initRegion(b, config, 64, 8, s_init);
    initRegion(b, entries, nentries * entry_bytes, 16, s_init);
    initRegion(b, gstats, 32, 8, s_init);
    b.condBroadcast(0, ready, s_rdy);

    for (unsigned t = 0; t < p.numThreads; ++t) {
        Rng trng(p.seed * 577 + t * 59);
        if (t != 0)
            b.condWait(t, ready, s_wai);

        for (std::uint64_t r = 0; r < rounds; ++r) {
            // Hot, clustered working set so threads collide on
            // buckets (concurrent read holds) and on entries.
            std::uint64_t e = (r / 3 + trng.below(32)) % nentries;
            LockAddr rw = bucket[e % nbuckets];
            if (trng.chance(0.2)) {
                // Writer-mode update: the injector's rwlock target
                // (elision and downgrade-to-reader both land here).
                b.wrlock(t, rw, s_wlk);
                b.write(t, entries + e * entry_bytes, 8, s_uwr);
                b.write(t, entries + e * entry_bytes + 8, 8, s_uwr);
                b.wrunlock(t, rw, s_wlk);
                if (r % 8 == 0)
                    b.atomicStore(t, epoch, s_pub);
            } else {
                // Read-mostly path under a shared read hold.
                b.rdlock(t, rw, s_rlk);
                b.read(t, entries + e * entry_bytes, 8, s_lrd);
                if (trng.chance(0.3))
                    b.read(t, entries + e * entry_bytes + 16, 8, s_lrd);
                b.rdunlock(t, rw, s_rlk);
                if (r % 8 == 3)
                    b.atomicLoad(t, epoch, s_sub);
            }

            // Coarse global statistics under a plain mutex.
            if (r % 5 == 2) {
                b.lock(t, slock, s_slk);
                b.read(t, gstats, 8, s_srd);
                b.write(t, gstats + 8, 8, s_swr);
                b.unlock(t, slock, s_slk);
            }

            b.compute(t, 120);
            if (r % 8 == 0)
                stats.bump(b, t, 0);
        }
        stats.bump(b, t, 1);
    }

    return b.finish();
}

} // namespace hard
