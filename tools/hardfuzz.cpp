/**
 * @file
 * hardfuzz — differential fuzzing front-end.
 *
 * Each seed deterministically generates a random multithreaded
 * program, simulates it once with the full detector battery (HARD,
 * exact lockset at two granularities, hybrid, happens-before,
 * FastTrack, DJIT+, RaceTrack) plus a trace recorder, replays the
 * recording through
 * independent reference analyses, and cross-checks the containment
 * invariants between all of them. Violating traces are ddmin-shrunk
 * to minimal repros and dumped as replayable corpus cases.
 *
 * Examples:
 *   hardfuzz --seeds 0..199 --jobs 8
 *   hardfuzz --seeds=50 --json=fuzz.json --out-dir=results/fuzz
 *   hardfuzz --seeds 0..20 --weaken=hard --out-dir=/tmp/repro
 *   hardfuzz --corpus=tests/corpus
 *   hardfuzz --list-invariants
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hh"
#include "fuzz/corpus.hh"
#include "fuzz/runner.hh"
#include "harness/campaign.hh"
#include "telemetry/profile.hh"

using namespace hard;

namespace
{

void
usage()
{
    std::puts(
        "hardfuzz — differential fuzzer for the HARD detector family\n"
        "\n"
        "sweep:\n"
        "  --seeds=<N|A..B>       seeds to fuzz (default 0..19)\n"
        "  --jobs=<n>             parallel workers (default: all cores);\n"
        "                         output is identical for any n\n"
        "  --json=<file>          write the hard.fuzz.v1 summary\n"
        "  --out-dir=<dir>        write violation artifacts (full trace,\n"
        "                         minimized trace, .case.json repro)\n"
        "  --no-minimize          skip ddmin reduction of violations\n"
        "  --max-probes=<n>       ddmin predicate-probe cap (2000)\n"
        "\n"
        "analysis shape:\n"
        "  --granularity=<bytes>  HARD/ideal/hybrid granularity (32)\n"
        "  --bloom-bits=<n>       BFVector width (16)\n"
        "  --weaken=<which>       sabotage one detector to prove the\n"
        "                         pipeline fires: hard|hb|ideal|djit|\n"
        "                         racetrack|none\n"
        "  --sample-rate=<r>      also run sampled ideal-lockset and\n"
        "                         happens-before legs at granule rate\n"
        "                         r in (0,1) and enforce their report\n"
        "                         sets are subsets of the unsampled\n"
        "                         ones (1 = off, the default)\n"
        "  --sample-seed=<n>      granule schedule seed for\n"
        "                         --sample-rate (1)\n"
        "\n"
        "generator shape:\n"
        "  --threads=<A..B>       thread-count range (2..4, max 8)\n"
        "  --phases=<n>           max barrier-separated phases (4)\n"
        "  --ops=<n>              max op blocks per thread per phase (32)\n"
        "  --locks=<n>            distinct locks (6)\n"
        "  --regions=<n>          shared data regions (4)\n"
        "  --nest=<n>             max simultaneously held locks (3; >3\n"
        "                         saturates HARD's 2-bit counters and\n"
        "                         voids the containment invariant)\n"
        "  --p-barrier=<0..1>     probability a phase ends in a barrier\n"
        "                         (0.75; 0 leaves semaphores as the only\n"
        "                         cross-phase ordering)\n"
        "  --p-sema=<0..1>        probability a phase opens with a\n"
        "                         semaphore hand-off (0.35)\n"
        "  --primitives=<list>    enable extended sync grammar families\n"
        "                         (comma-separated): rwlock (reader/\n"
        "                         writer critical sections, reader-mode\n"
        "                         writes as discipline bugs), condvar\n"
        "                         (broadcast hand-offs), atomic\n"
        "                         (release-acquire store/load pairs);\n"
        "                         'all' enables every family. Off by\n"
        "                         default, so default sweeps and their\n"
        "                         trace-cache keys are unchanged\n"
        "\n"
        "fast functional mode:\n"
        "  --mode=<cycle|fast>    fast records each seed's program once\n"
        "                         and derives every detector/oracle key\n"
        "                         set by trace replay (identical results,\n"
        "                         no timing simulation)\n"
        "  --trace-cache=<dir>    content-addressed recording store for\n"
        "                         fast mode; recordings are keyed by\n"
        "                         (seed, generator shape, sim config) and\n"
        "                         shared across analysis sweeps\n"
        "\n"
        "campaign mode (crash-tolerant sharded sweeps; docs/campaigns.md):\n"
        "  --campaign             run the sweep as supervised shard\n"
        "                         processes (requires --json); crashed\n"
        "                         seeds are retried and quarantined, the\n"
        "                         merged summary is byte-identical to a\n"
        "                         crash-free run\n"
        "  --shards=<n>           concurrent shard processes (2)\n"
        "  --max-unit-retries=<n> shard crashes before a seed is\n"
        "                         quarantined (2)\n"
        "  --retry-backoff-ms=<n> base retry backoff, doubled per crash\n"
        "                         (25)\n"
        "  --shard-timeout=<ms>   SIGKILL a shard whose journal stalls\n"
        "                         this long (0 = off)\n"
        "  --resume               merge shard journals left by an\n"
        "                         interrupted campaign before spawning\n"
        "  --inject-shard-crash=SEEDIDX.0:KIND[:TIMES]\n"
        "                         built-in crash injector (tests/CI);\n"
        "                         KIND: pre-unit | mid-journal-write |\n"
        "                         mid-cache-store\n"
        "  --monitor              publish a live hard.campaign.status.v1\n"
        "                         file (<json stem>.status.json) from\n"
        "                         shard heartbeats; watch with hardtop.\n"
        "                         Never changes deterministic outputs\n"
        "\n"
        "observability (docs/observability.md):\n"
        "  --profile[=FILE]       wall-clock self-profile\n"
        "                         (hard.profile.v1): per-phase and per-\n"
        "                         detector time, peak RSS, cache/journal\n"
        "                         counters; embedded in the --json\n"
        "                         summary, written to FILE when given\n"
        "\n"
        "other modes:\n"
        "  --corpus=<dir>         re-judge every committed corpus case\n"
        "  --list-invariants      print the checked invariants and exit\n"
        "\n"
        "exit status: 0 iff every seed (or corpus case) is clean and\n"
        "nothing was quarantined\n");
}

struct Cli
{
    FuzzOptions opts;
    std::string seedSpec = "0..19";
    std::string jsonPath;
    std::string corpusDir;
    std::string modeName = "cycle";
    std::string traceCacheDir;
    bool listInvariants = false;
    // Campaign mode (crash-tolerant sharded sweep).
    bool campaign = false;
    unsigned shards = 2;
    unsigned maxUnitRetries = 2;
    std::uint64_t retryBackoffMs = 25;
    std::uint64_t shardTimeoutMs = 0;
    bool resume = false;
    std::string injectShardCrash;
    // Live monitoring (wall-clock plane; see docs/observability.md).
    bool monitor = false;
    // Wall-clock self-profiling (hard.profile.v1).
    bool profile = false;
    std::string profilePath;
};

[[noreturn]] void
dieBadFlag(const char *a)
{
    std::fprintf(stderr, "hardfuzz: unknown argument '%s'\n", a);
    std::exit(2);
}

/** Apply --primitives=<csv> to the generator config. */
void
applyPrimitives(const std::string &list, FuzzGenConfig &gen)
{
    std::size_t pos = 0;
    while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string name =
            list.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
        if (name == "rwlock" || name == "all") {
            gen.numRwLocks = 2;
            gen.pRwLocked = 0.25;
        }
        if (name == "condvar" || name == "all") {
            gen.pCond = 0.4;
        }
        if (name == "atomic" || name == "all") {
            gen.numAtomics = 2;
            gen.pAtomic = 0.15;
        }
        if (name != "rwlock" && name != "condvar" && name != "atomic" &&
            name != "all") {
            std::fprintf(stderr,
                         "hardfuzz: bad --primitives entry '%s' "
                         "(rwlock|condvar|atomic|all)\n",
                         name.c_str());
            std::exit(2);
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
}

Cli
parseArgs(int argc, char **argv)
{
    Cli cli;
    std::vector<std::string> args(argv + 1, argv + argc);
    // Accept both --flag=value and --flag value.
    auto eat = [&](std::size_t &i, const char *flag,
                   std::string &dst) {
        const std::string &a = args[i];
        const std::size_t n = std::strlen(flag);
        if (a.compare(0, n, flag) == 0 && a.size() > n &&
            a[n] == '=') {
            dst = a.substr(n + 1);
            return true;
        }
        if (a == flag && i + 1 < args.size()) {
            dst = args[++i];
            return true;
        }
        return false;
    };
    auto eatUnsigned = [&](std::size_t &i, const char *flag,
                           unsigned &dst) {
        std::string v;
        if (!eat(i, flag, v))
            return false;
        try {
            dst = static_cast<unsigned>(std::stoul(v));
        } catch (const std::exception &) {
            std::fprintf(stderr, "hardfuzz: bad value for %s: '%s'\n",
                         flag, v.c_str());
            std::exit(2);
        }
        return true;
    };
    auto eatProb = [&](std::size_t &i, const char *flag, double &dst) {
        std::string v;
        if (!eat(i, flag, v))
            return false;
        try {
            dst = std::stod(v);
        } catch (const std::exception &) {
            dst = -1.0;
        }
        if (dst < 0.0 || dst > 1.0) {
            std::fprintf(stderr,
                         "hardfuzz: %s needs a value in [0, 1], got "
                         "'%s'\n",
                         flag, v.c_str());
            std::exit(2);
        }
        return true;
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        std::string v;
        if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else if (a == "--list-invariants") {
            cli.listInvariants = true;
        } else if (a == "--no-minimize") {
            cli.opts.minimize = false;
        } else if (a == "--campaign") {
            cli.campaign = true;
        } else if (a == "--monitor") {
            cli.monitor = true;
        } else if (a == "--resume") {
            cli.resume = true;
        } else if (a == "--profile") {
            cli.profile = true;
        } else if (a.rfind("--profile=", 0) == 0) {
            cli.profile = true;
            cli.profilePath = a.substr(std::strlen("--profile="));
        } else if (eat(i, "--seeds", cli.seedSpec) ||
                   eat(i, "--json", cli.jsonPath) ||
                   eat(i, "--out-dir", cli.opts.outDir) ||
                   eat(i, "--corpus", cli.corpusDir) ||
                   eat(i, "--mode", cli.modeName) ||
                   eat(i, "--trace-cache", cli.traceCacheDir) ||
                   eat(i, "--inject-shard-crash",
                       cli.injectShardCrash)) {
            // handled
        } else if (eatUnsigned(i, "--shards", cli.shards) ||
                   eatUnsigned(i, "--max-unit-retries",
                               cli.maxUnitRetries)) {
            if (cli.shards == 0 || cli.maxUnitRetries == 0) {
                std::fprintf(stderr,
                             "hardfuzz: --shards/--max-unit-retries "
                             "must be positive\n");
                std::exit(2);
            }
        } else if (eat(i, "--retry-backoff-ms", v)) {
            cli.retryBackoffMs = std::stoull(v);
        } else if (eat(i, "--shard-timeout", v)) {
            cli.shardTimeoutMs = std::stoull(v);
        } else if (eatUnsigned(i, "--jobs", cli.opts.jobs) ||
                   eatUnsigned(i, "--granularity",
                               cli.opts.cfg.granularity) ||
                   eatUnsigned(i, "--bloom-bits",
                               cli.opts.cfg.bloomBits) ||
                   eatUnsigned(i, "--phases", cli.opts.gen.maxPhases) ||
                   eatUnsigned(i, "--ops", cli.opts.gen.maxOps) ||
                   eatUnsigned(i, "--locks", cli.opts.gen.numLocks) ||
                   eatUnsigned(i, "--regions",
                               cli.opts.gen.numRegions) ||
                   eatUnsigned(i, "--nest", cli.opts.gen.maxNest)) {
            // handled
        } else if (eatProb(i, "--p-barrier", cli.opts.gen.pBarrier) ||
                   eatProb(i, "--p-sema", cli.opts.gen.pSema)) {
            // handled
        } else if (eat(i, "--max-probes", v)) {
            cli.opts.maxProbes = std::stoul(v);
        } else if (eat(i, "--sample-rate", v)) {
            try {
                cli.opts.cfg.sampleRate = std::stod(v);
            } catch (const std::exception &) {
                cli.opts.cfg.sampleRate = -1.0;
            }
            if (!(cli.opts.cfg.sampleRate > 0.0) ||
                cli.opts.cfg.sampleRate > 1.0) {
                std::fprintf(stderr,
                             "hardfuzz: --sample-rate needs a value in "
                             "(0, 1], got '%s'\n",
                             v.c_str());
                std::exit(2);
            }
        } else if (eat(i, "--sample-seed", v)) {
            cli.opts.cfg.sampleSeed = std::stoull(v);
        } else if (eat(i, "--threads", v)) {
            const auto dots = v.find("..");
            try {
                if (dots == std::string::npos) {
                    cli.opts.gen.minThreads =
                        static_cast<unsigned>(std::stoul(v));
                    cli.opts.gen.maxThreads = cli.opts.gen.minThreads;
                } else {
                    cli.opts.gen.minThreads = static_cast<unsigned>(
                        std::stoul(v.substr(0, dots)));
                    cli.opts.gen.maxThreads = static_cast<unsigned>(
                        std::stoul(v.substr(dots + 2)));
                }
            } catch (const std::exception &) {
                std::fprintf(stderr,
                             "hardfuzz: bad --threads '%s'\n",
                             v.c_str());
                std::exit(2);
            }
        } else if (eat(i, "--weaken", v)) {
            cli.opts.cfg.weaken = parseWeaken(v);
        } else if (eat(i, "--primitives", v)) {
            applyPrimitives(v, cli.opts.gen);
        } else {
            dieBadFlag(a.c_str());
        }
    }
    return cli;
}

/**
 * The campaign shard body for a fuzz sweep: each unit is
 * (seed-index, 0); run it through runFuzzSeed serially in assignment
 * order (blame attribution depends on the order) and journal the
 * seedResultJson payload. The crash injector mirrors the batch body:
 * pre-unit raises SIGKILL before the seed runs, mid-journal-write arms
 * BatchJournal::killMidAppend, mid-cache-store arms the TraceCache
 * store hook for the duration of the target seed.
 */
ShardBody
makeFuzzShardBody(FuzzOptions opts, TraceCache *cache)
{
    return [opts = std::move(opts), cache](
               const std::vector<JournalKey> &units,
               BatchJournal &journal, const CrashSpec *crash) {
        auto armed = std::make_shared<std::atomic<bool>>(false);
        if (crash && crash->kind == CrashSpec::Kind::MidCacheStore &&
            cache)
            cache->setStoreCrashHook([armed] {
                if (armed->load(std::memory_order_relaxed))
                    ::raise(SIGKILL);
            });
        for (const JournalKey &key : units) {
            if (crash && crash->key() == key) {
                if (crash->kind == CrashSpec::Kind::PreUnit)
                    ::raise(SIGKILL);
                else if (crash->kind == CrashSpec::Kind::MidJournalWrite)
                    journal.killMidAppend(key);
                else
                    armed->store(true, std::memory_order_relaxed);
            }
            SeedResult sr = runFuzzSeed(opts.seeds[key.first], opts);
            journal.append(key, seedResultJson(sr));
            armed->store(false, std::memory_order_relaxed);
        }
        return 0;
    };
}

int
runCorpus(const std::string &dir)
{
    std::vector<CorpusVerdict> verdicts = checkCorpus(dir);
    unsigned bad = 0;
    for (const CorpusVerdict &v : verdicts) {
        if (v.ok) {
            std::printf("ok    %s\n", v.name.c_str());
        } else {
            ++bad;
            std::printf("FAIL  %s: %s\n", v.name.c_str(),
                        v.message.c_str());
        }
    }
    std::printf("corpus: %zu case(s), %u failure(s)\n", verdicts.size(),
                bad);
    return bad == 0 ? 0 : 1;
}

int
runSweep(Cli &cli)
{
    cli.opts.seeds = parseSeedSpec(cli.seedSpec);
    cli.opts.mode = parseExecMode(cli.modeName);
    if (!cli.traceCacheDir.empty() && cli.opts.mode != ExecMode::Fast)
        throw ConfigError("--trace-cache requires --mode=fast");
    std::unique_ptr<TraceCache> cache;
    if (!cli.traceCacheDir.empty()) {
        cache = std::make_unique<TraceCache>(cli.traceCacheDir);
        cli.opts.traceCache = cache.get();
    }
    // Surface analysis-config typos once, up front, instead of as N
    // identical per-seed failures.
    makeFuzzBattery(cli.opts.cfg);

    std::vector<SeedResult> results;
    CampaignResult camp;
    if (cli.campaign) {
        if (cli.jsonPath.empty())
            throw ConfigError("--campaign requires --json=<file>");
        std::vector<JournalKey> units;
        units.reserve(cli.opts.seeds.size());
        for (std::size_t i = 0; i < cli.opts.seeds.size(); ++i)
            units.push_back({i, 0});
        CampaignOptions copts;
        copts.shards = cli.shards;
        copts.maxUnitRetries = cli.maxUnitRetries;
        copts.backoffBaseMs = cli.retryBackoffMs;
        copts.shardStallTimeoutMs = cli.shardTimeoutMs;
        copts.outputBase = cli.jsonPath;
        copts.signature = fuzzSignature(cli.opts);
        copts.resume = cli.resume;
        copts.monitor = cli.monitor;
        if (!cli.injectShardCrash.empty())
            copts.injectCrash = parseCrashSpec(cli.injectShardCrash);
        const std::vector<std::uint64_t> &seeds = cli.opts.seeds;
        copts.quarantinePayload = [&seeds](const JournalKey &key,
                                           unsigned attempts) {
            SeedResult sr;
            sr.seed = seeds[key.first];
            sr.outcome = "quarantined";
            sr.errorType = "ShardCrashError";
            sr.errorMessage = errfmt(
                "seed crashed its shard %u time%s and was quarantined",
                attempts, attempts == 1 ? "" : "s");
            return seedResultJson(sr);
        };
        std::printf("campaign: %zu seed(s) across up to %u shard(s)\n",
                    cli.opts.seeds.size(), cli.shards);
        camp = runCampaign(units, copts,
                           makeFuzzShardBody(cli.opts, cache.get()));
        results.reserve(cli.opts.seeds.size());
        for (std::size_t i = 0; i < cli.opts.seeds.size(); ++i) {
            const auto it = camp.entries.find({i, 0});
            hard_throw_if(it == camp.entries.end(), ConfigError,
                          "campaign merge lost seed index %zu", i);
            results.push_back(seedResultFromJson(it->second));
        }
    } else {
        results = runFuzzSeeds(cli.opts);
    }

    std::uint64_t ok = 0, violations = 0, failed = 0, quarantined = 0;
    for (const SeedResult &sr : results) {
        if (sr.outcome == "ok") {
            ++ok;
            continue;
        }
        if (sr.outcome == "failed" || sr.outcome == "quarantined") {
            if (sr.outcome == "quarantined")
                ++quarantined;
            else
                ++failed;
            std::printf("seed %llu: %s (%s: %s)\n",
                        static_cast<unsigned long long>(sr.seed),
                        sr.outcome == "quarantined" ? "QUARANTINED"
                                                    : "FAILED",
                        sr.errorType.c_str(), sr.errorMessage.c_str());
            continue;
        }
        ++violations;
        std::printf("seed %llu: VIOLATION (%zu events)\n",
                    static_cast<unsigned long long>(sr.seed), sr.events);
        for (const Violation &v : sr.violations)
            std::printf("  %s: %s (%zu witness key(s))\n",
                        v.invariant.c_str(), v.detail.c_str(),
                        v.totalWitnesses);
        if (sr.minimized)
            std::printf("  minimized to %zu event(s) in %zu probe(s)%s\n",
                        sr.minStats.finalEvents, sr.minStats.probes,
                        sr.minStats.capped ? " [capped]" : "");
        if (!sr.casePath.empty())
            std::printf("  repro: %s\n", sr.casePath.c_str());
    }
    std::printf(
        "fuzz: %zu seed(s): %llu ok, %llu violation(s), %llu failed\n",
        results.size(), static_cast<unsigned long long>(ok),
        static_cast<unsigned long long>(violations),
        static_cast<unsigned long long>(failed));

    if (cli.campaign) {
        const CampaignCounters &cc = camp.counters;
        std::printf(
            "campaign: %llu shard(s) spawned, %llu ok, %llu crashed "
            "(%llu stalled), %llu retry(ies), %llu restored, "
            "%llu injected\n",
            static_cast<unsigned long long>(cc.shardsSpawned),
            static_cast<unsigned long long>(cc.shardExitsOk),
            static_cast<unsigned long long>(cc.shardCrashes),
            static_cast<unsigned long long>(cc.shardStalls),
            static_cast<unsigned long long>(cc.retries),
            static_cast<unsigned long long>(cc.restored),
            static_cast<unsigned long long>(cc.injectedCrashes));
        for (const JournalKey &key : camp.quarantined)
            std::printf("campaign: seed %llu QUARANTINED after "
                        "repeated shard crashes\n",
                        static_cast<unsigned long long>(
                            cli.opts.seeds[key.first]));
        std::printf("campaign report written to %s\n",
                    campaignManifestPathFor(cli.jsonPath).c_str());
    }

    if (cache) {
        const TraceCache::Counters c = cache->counters();
        std::printf("trace cache: %llu hit(s), %llu miss(es), "
                    "%llu store(s)\n",
                    static_cast<unsigned long long>(c.hits),
                    static_cast<unsigned long long>(c.misses),
                    static_cast<unsigned long long>(c.stores));
    }

    if (!cli.jsonPath.empty()) {
        Json doc = fuzzJson(cli.opts, results);
        // The wall-clock profile rides along as the last top-level
        // key; without --profile the summary is byte-identical to a
        // profile-less build's output.
        if (Profiler::active() != nullptr)
            doc.set("profile", Profiler::active()->toJson());
        writeJsonFile(cli.jsonPath, doc);
    }

    return (violations == 0 && failed == 0 && quarantined == 0) ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Cli cli = parseArgs(argc, argv);
        if (cli.listInvariants) {
            for (const std::string &n : invariantNames())
                std::printf("%s\n", n.c_str());
            return 0;
        }
        if (cli.monitor && !cli.campaign)
            throw ConfigError("--monitor requires --campaign (it "
                              "reads shard heartbeats)");
        if (cli.profile)
            Profiler::enable();
        int rc;
        if (!cli.corpusDir.empty())
            rc = runCorpus(cli.corpusDir);
        else
            rc = runSweep(cli);
        if (Profiler::active() != nullptr &&
            !cli.profilePath.empty()) {
            writeJsonFile(cli.profilePath,
                          Profiler::active()->toJson());
            std::printf("profile written to %s\n",
                        cli.profilePath.c_str());
        }
        return rc;
    } catch (const SimError &e) {
        std::fprintf(stderr, "hardfuzz: %s\n", e.what());
        return 2;
    }
}
