/**
 * @file
 * hardtop — live campaign monitor.
 *
 * Renders the hard.campaign.status.v1 document a `--monitor` campaign
 * supervisor publishes (atomically, via rename) next to its JSON
 * output: unit progress, throughput and ETA, retry/quarantine rates,
 * and a per-shard table fed by the shard heartbeat side files.
 *
 * Usage:
 *   hardtop STATUS_FILE [--once] [--interval=MS]
 *
 * Without --once, hardtop redraws every --interval ms (default 500)
 * until the status file reports state "complete". Because the
 * supervisor publishes with an atomic rename, every read observes a
 * complete, parseable document; a missing file just means the
 * campaign has not started yet (hardtop waits for it).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "common/json.hh"

using namespace hard;

namespace
{

void
usage()
{
    std::puts("hardtop — live campaign monitor\n"
              "\n"
              "  hardtop STATUS_FILE [--once] [--interval=MS]\n"
              "\n"
              "STATUS_FILE is the hard.campaign.status.v1 document a\n"
              "`--campaign --monitor` run publishes next to its --json\n"
              "output (<json stem>.status.json). Without --once,\n"
              "redraws every MS milliseconds (500) until the campaign\n"
              "completes.");
}

/** Slurp a whole file; empty optional-style flag via @p ok. */
std::string
readFile(const std::string &path, bool &ok)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        ok = false;
        return "";
    }
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    ok = true;
    return text;
}

/** "####----" progress bar; width cells, done of total filled. */
std::string
bar(std::uint64_t done, std::uint64_t total, std::size_t width)
{
    const std::size_t fill = total == 0
        ? width
        : static_cast<std::size_t>(
              static_cast<double>(done) / static_cast<double>(total) *
              static_cast<double>(width));
    std::string s(fill > width ? width : fill, '#');
    s.append(width - s.size(), '-');
    return s;
}

std::string
fmtSeconds(double s)
{
    char out[32];
    if (s >= 3600.0)
        std::snprintf(out, sizeof(out), "%.0fh%02.0fm", s / 3600.0,
                      (s - 3600.0 * static_cast<int>(s / 3600.0)) / 60.0);
    else if (s >= 60.0)
        std::snprintf(out, sizeof(out), "%.0fm%02.0fs", s / 60.0,
                      s - 60.0 * static_cast<int>(s / 60.0));
    else
        std::snprintf(out, sizeof(out), "%.1fs", s);
    return out;
}

/** Render one status frame to stdout. Returns true if the document
 * reports state "complete". */
bool
render(const Json &st)
{
    const Json &units = st["units"];
    const Json &tp = st["throughput"];
    const Json &rates = st["rates"];
    const std::uint64_t total = units["total"].asUint();
    const std::uint64_t completed = units["completed"].asUint();
    const std::uint64_t restored = units["restored"].asUint();
    const std::uint64_t quarantined = units["quarantined"].asUint();
    const std::uint64_t done = completed + restored + quarantined;
    const std::string state = st["state"].asString();

    std::printf("campaign %s  seq %llu  elapsed %s\n",
                state.c_str(),
                static_cast<unsigned long long>(
                    st["sequence"].asUint()),
                fmtSeconds(st["elapsedSeconds"].asDouble()).c_str());
    std::printf("  [%s] %llu/%llu unit(s)\n",
                bar(done, total, 40).c_str(),
                static_cast<unsigned long long>(done),
                static_cast<unsigned long long>(total));
    std::printf("  pending %llu  in-flight %llu  completed %llu  "
                "restored %llu  quarantined %llu\n",
                static_cast<unsigned long long>(
                    units["pending"].asUint()),
                static_cast<unsigned long long>(
                    units["inFlight"].asUint()),
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(restored),
                static_cast<unsigned long long>(quarantined));
    std::printf("  %.2f unit(s)/s", tp["unitsPerSec"].asDouble());
    if (tp.has("etaSeconds"))
        std::printf("  eta %s",
                    fmtSeconds(tp["etaSeconds"].asDouble()).c_str());
    std::printf("  retry rate %.1f%%  quarantine rate %.1f%%\n",
                rates["retryRate"].asDouble() * 100.0,
                rates["quarantineRate"].asDouble() * 100.0);

    // Detection-report telemetry (monitored campaigns): total dynamic
    // reports journaled so far, reports/sec, and the age of the
    // newest report anywhere in the fleet.
    if (st.has("reports")) {
        const Json &rep = st["reports"];
        std::printf("  reports %llu  %.2f report(s)/s",
                    static_cast<unsigned long long>(
                        rep["total"].asUint()),
                    rep["perSec"].asDouble());
        if (rep.has("lastAgeSeconds"))
            std::printf("  last %s ago",
                        fmtSeconds(rep["lastAgeSeconds"].asDouble())
                            .c_str());
        std::printf("\n");
    }

    const Json &shards = st["shards"];
    if (shards.size() != 0) {
        std::printf("\n  %-6s %-8s %-12s %-10s %-10s %-10s %-8s\n",
                    "shard", "pid", "done", "units/s", "reports", "rss",
                    "state");
        for (std::size_t i = 0; i < shards.size(); ++i) {
            const Json &sh = shards.at(i);
            char prog[32];
            std::snprintf(
                prog, sizeof(prog), "%llu/%llu",
                static_cast<unsigned long long>(sh["done"].asUint()),
                static_cast<unsigned long long>(
                    sh["assigned"].asUint()));
            char rss[32];
            std::snprintf(rss, sizeof(rss), "%lluM",
                          static_cast<unsigned long long>(
                              sh["rssBytes"].asUint() / (1024 * 1024)));
            std::printf(
                "  %-6llu %-8llu %-12s %-10.2f %-10llu %-10s %-8s\n",
                static_cast<unsigned long long>(sh["shard"].asUint()),
                static_cast<unsigned long long>(sh["pid"].asUint()),
                prog, sh["unitsPerSec"].asDouble(),
                static_cast<unsigned long long>(
                    sh.has("reports") ? sh["reports"].asUint() : 0),
                rss, sh["stalled"].asBool() ? "STALLED" : "live");
        }
    }
    return state == "complete";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    bool once = false;
    std::uint64_t interval_ms = 500;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
            usage();
            return 0;
        } else if (std::strcmp(a, "--once") == 0) {
            once = true;
        } else if (std::strncmp(a, "--interval=", 11) == 0) {
            interval_ms = std::strtoull(a + 11, nullptr, 10);
            if (interval_ms == 0)
                interval_ms = 1;
        } else if (a[0] == '-') {
            std::fprintf(stderr, "hardtop: unknown argument '%s'\n", a);
            return 2;
        } else if (path.empty()) {
            path = a;
        } else {
            std::fprintf(stderr, "hardtop: one STATUS_FILE only\n");
            return 2;
        }
    }
    if (path.empty()) {
        usage();
        return 2;
    }

    bool waiting_reported = false;
    for (;;) {
        bool ok = false;
        const std::string text = readFile(path, ok);
        if (!ok) {
            if (once) {
                std::fprintf(stderr, "hardtop: cannot read '%s'\n",
                             path.c_str());
                return 1;
            }
            if (!waiting_reported) {
                std::printf("hardtop: waiting for %s ...\n",
                            path.c_str());
                waiting_reported = true;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(interval_ms));
            continue;
        }
        std::string err;
        const Json st = Json::parse(text, &err);
        if (!err.empty() || !st.isObject() || !st.has("schema")) {
            std::fprintf(stderr, "hardtop: '%s' is not a status file\n",
                         path.c_str());
            return 1;
        }
        if (st["schema"].asString() !=
            std::string("hard.campaign.status.v1")) {
            std::fprintf(stderr,
                         "hardtop: unsupported schema '%s' (want "
                         "hard.campaign.status.v1)\n",
                         st["schema"].asString().c_str());
            return 1;
        }
        if (!once)
            std::fputs("\x1b[2J\x1b[H", stdout); // clear + home
        const bool complete = render(st);
        std::fflush(stdout);
        if (once)
            return 0;
        if (complete)
            return 0;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(interval_ms));
    }
}
