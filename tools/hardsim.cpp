/**
 * @file
 * hardsim — the full-featured simulator front-end.
 *
 * Drives the entire library from the command line: pick a workload,
 * shape the machine (Table 1 by default), choose any combination of
 * detectors, inject a race, record or replay a trace, measure
 * overhead, run a whole parallel experiment batch, and dump machine
 * statistics.
 *
 * Examples:
 *   hardsim --workload=water-nsquared --detectors=hard,hb
 *   hardsim --workload=ocean --inject=7 --detectors=hard,ideal,hybrid
 *   hardsim --workload=server --l2-kb=256 --stats
 *   hardsim --workload=fmm --overhead [--directory]
 *   hardsim --workload=raytrace --record=/tmp/run.trc
 *   hardsim --replay=/tmp/run.trc --detectors=hard
 *   hardsim --batch --jobs=4 --json=out.json          (Table 2 sweep)
 *   hardsim --batch --overhead --runs=10 --json=all.json
 *   hardsim --batch --mode=fast --trace-cache=/tmp/tc --json=out.json
 *   hardsim --list
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "core/hybrid.hh"
#include "detectors/fasttrack.hh"
#include "explain/classifier.hh"
#include "explain/explain_json.hh"
#include "harness/batch.hh"
#include "harness/campaign.hh"
#include "harness/experiment.hh"
#include "harness/frontier.hh"
#include "telemetry/sampler.hh"
#include "telemetry/profile.hh"
#include "telemetry/trace_event.hh"
#include "trace/record.hh"
#include "trace/recorder.hh"
#include "trace/replayer.hh"
#include "trace/trace_cache.hh"

using namespace hard;

namespace
{

struct Options
{
    std::string workload = "water-nsquared";
    /** True once --workload= was given (batch defaults to all). */
    bool workloadSet = false;
    std::string detectors = "hard,ideal,hb,hb-ideal";
    std::string record;
    std::string replay;
    double scale = 1.0;
    std::uint64_t seed = 1;
    bool inject = false;
    std::uint64_t injectSeed = 1;
    bool overhead = false;
    bool directory = false;
    bool stats = false;
    bool list = false;

    // Open-loop production scenario (server workload).
    bool openLoop = false;
    double arrivalGap = 300.0;
    std::uint64_t arrivalWindow = 500000;
    std::uint64_t churnPeriod = 64;

    // Detection sampling (sim/sampling.hh; rate 1.0 = monitor all).
    std::string sampleMode = "granule";
    double sampleRate = 1.0;
    std::uint64_t sampleSeed = 1;
    Cycle samplePeriod = 65536;

    // Detection-latency telemetry (batch mode; always on in frontier).
    bool latency = false;

    // Frontier mode (overhead-vs-latency sampling-rate sweep).
    bool frontier = false;
    std::string ratesCsv = "1,0.5,0.25,0.125";

    // Telemetry (docs/observability.md).
    bool statsJson = false;
    std::string statsJsonPath;
    Cycle statsInterval = 0;
    std::string intervalsPath;
    std::string traceEvents;
    std::string traceCategories;
    bool traceCategoriesSet = false;

    // Provenance / divergence attribution (src/explain).
    bool explain = false;
    std::string explainPath;

    // Wall-clock self-profiling (hard.profile.v1; strictly separate
    // from the deterministic simulated-cycle telemetry plane).
    bool profile = false;
    std::string profilePath;

    // Fast functional mode (trace-once/replay-many detection).
    std::string modeName = "cycle";
    bool modeSet = false;
    std::string traceCacheDir;
    std::string traceCacheStatsPath;

    // Batch mode (parallel experiment sweeps).
    bool batch = false;
    unsigned jobs = 0; // 0 = all hardware threads
    unsigned runs = 10;
    std::uint64_t batchSeed = 1000;
    std::string jsonPath;

    // Campaign mode (crash-tolerant sharded multi-process sweeps).
    bool campaign = false;
    bool monitor = false;
    unsigned shards = 2;
    unsigned maxUnitRetries = 2;
    std::uint64_t unitTimeoutMs = 0;  // 0 = no per-unit wall budget
    std::uint64_t shardTimeoutMs = 0; // 0 = stall detector off
    std::uint64_t retryBackoffMs = 25;
    std::uint64_t cacheSweepAgeSec = 900;
    std::string injectShardCrash;

    // Failure containment / resume.
    bool keepGoing = false;
    unsigned maxFailures = 0; // 0 = unlimited
    bool resume = false;
    Cycle maxCycles = 0; // 0 = default budget (batch) / unlimited
    Cycle watchdogCycles = 0;
    bool watchdogSet = false;

    /**
     * Flags that also apply to a single run, in the order given —
     * the tail of the exact repro command reported for batch
     * failures.
     */
    std::vector<std::string> reproArgs;

    // Machine shape (defaults = Table 1).
    unsigned cores = 4;
    std::string protocol = "mesi";
    std::uint64_t l1Kb = 16;
    std::uint64_t l2Kb = 1024;
    unsigned lineBytes = 32;
    Cycle memLatency = 200;

    // HARD shape.
    unsigned bloomBits = 16;
    unsigned granularity = 32;
    bool barrierReset = true;
    bool unbounded = false;
};

void
usage()
{
    std::puts(
        "hardsim — HARD lockset race-detection simulator\n"
        "\n"
        "single run:\n"
        "  --list                    list workloads and exit\n"
        "  --workload=<name>         workload to run (single-run mode)\n"
        "  --scale=<f>               workload scale factor (1.0 = paper)\n"
        "  --seed=<n>                workload layout seed\n"
        "  --inject=<seed>           elide one dynamic lock/unlock pair\n"
        "  --detectors=<a,b,...>     hard, ideal, hb, hb-ideal, hybrid,\n"
        "                            fasttrack (or 'none')\n"
        "  --record=<file>           write the run's trace\n"
        "  --replay=<file>           analyze a trace offline instead of\n"
        "                            simulating\n"
        "  --overhead [--directory]  Figure 8-style overhead run (snoopy\n"
        "                            or directory metadata management)\n"
        "  --stats                   dump machine statistics\n"
        "\n"
        "open-loop production scenario (server workload):\n"
        "  --open-loop               drive the server with a seeded\n"
        "                            exponential request-arrival process\n"
        "                            plus connection churn instead of a\n"
        "                            fixed request count\n"
        "  --arrival-gap=<cycles>    mean inter-arrival gap per worker\n"
        "                            thread (300)\n"
        "  --arrival-window=<cycles> arrival window length: each thread\n"
        "                            serves requests arriving within this\n"
        "                            many cycles of think time (500000)\n"
        "  --churn-period=<n>        retire/rebuild one connection and\n"
        "                            migrate the hot set every n requests\n"
        "                            per thread (64; 0 = off)\n"
        "\n"
        "detection sampling (always-on monitoring; single runs, batch\n"
        "and frontier):\n"
        "  --sample-rate=<r>         fraction of data accesses the\n"
        "                            detectors observe, in (0,1]; 1.0\n"
        "                            (default) is byte-identical to an\n"
        "                            unsampled run\n"
        "  --sample-mode=granule|epoch\n"
        "                            granule: seeded per-granule coin\n"
        "                            (reports are a subset of the\n"
        "                            unsampled run's); epoch: duty cycle\n"
        "                            over simulated time (bounds latency)\n"
        "  --sample-seed=<n>         sampling schedule seed (1)\n"
        "  --sample-period=<cycles>  epoch-mode duty-cycle period (65536)\n"
        "\n"
        "frontier mode (overhead-vs-latency sweep; docs/observability.md):\n"
        "  --frontier                sweep sampling rates over one\n"
        "                            workload (default: server): per rate,\n"
        "                            --runs injected runs with detection-\n"
        "                            latency telemetry + one overhead\n"
        "                            unit; writes hard.frontier.v1 to\n"
        "                            --json (or stdout). Effectiveness\n"
        "                            legs default to --mode=fast\n"
        "  --rates=<r1,r2,...>       rates to sweep (1,0.5,0.25,0.125)\n"
        "\n"
        "telemetry (single runs; see docs/observability.md):\n"
        "  --stats-json=<file>       write the full hierarchical stat\n"
        "                            registry as JSON (hard.stats.v1)\n"
        "  --stats-interval=<n>      sample probes every n cycles into a\n"
        "                            JSONL time series (hard.intervals.v1);\n"
        "                            path from --intervals or derived from\n"
        "                            --stats-json\n"
        "  --intervals=<file>        interval time-series output path\n"
        "  --trace-events=<file>     write a Chrome/Perfetto trace_event\n"
        "                            JSON timeline (load in ui.perfetto.dev)\n"
        "  --trace-categories=<csv>  mem,coherence,detector,sync,all\n"
        "                            (default: all)\n"
        "  --explain[=FILE]          record the run's trace and replay\n"
        "                            it through the divergence\n"
        "                            classifier: print per-report\n"
        "                            causal chains plus HARD-vs-exact-\n"
        "                            lockset attribution, and with\n"
        "                            =FILE write hard.explain.v1 JSON\n"
        "                            (also usable with --replay)\n"
        "  --profile[=FILE]          wall-clock self-profile: per-phase\n"
        "                            wall/CPU time, peak RSS, and cache/\n"
        "                            journal counters (hard.profile.v1);\n"
        "                            embedded in the --json document in\n"
        "                            batch mode, written to FILE when\n"
        "                            given, printed otherwise. Never\n"
        "                            changes deterministic outputs\n"
        "\n"
        "fast functional mode (single runs and batch):\n"
        "  --mode=fast|cycle         fast: record each run once at cycle\n"
        "                            level (or fetch the recording from\n"
        "                            the trace cache) and replay it\n"
        "                            through the detectors only — same\n"
        "                            reports, no timing simulation;\n"
        "                            cycle (default): full simulation\n"
        "  --trace-cache=<dir>       content-addressed recording store\n"
        "                            for --mode=fast, shared across\n"
        "                            invocations and --jobs workers\n"
        "  --trace-cache-stats=<file> write the cache's hit/miss/store/\n"
        "                            eviction counters (hard.stats.v1)\n"
        "\n"
        "batch mode (parallel experiment sweeps):\n"
        "  --batch                   run the Table 2-style effectiveness\n"
        "                            sweep: per workload, --runs injected-\n"
        "                            race runs + one race-free run, under\n"
        "                            the --detectors set; with --overhead,\n"
        "                            also a Figure 8 overhead row each\n"
        "  --workload=<a,b|all>      workloads to sweep (default: all)\n"
        "  --jobs=<n>                worker threads (default: all cores);\n"
        "                            results are identical for any n\n"
        "  --runs=<n>                injected-race runs per workload (10)\n"
        "  --inject=<seed0>          base injection seed (1000); run r\n"
        "                            injects with seed0 + r\n"
        "  --json=<file>             write per-run + aggregate results as\n"
        "                            JSON (schema hard.batch.v2)\n"
        "  --keep-going              contain per-run failures: record each\n"
        "                            run's outcome (ok | failed | deadlock\n"
        "                            | budget_exceeded) with a repro\n"
        "                            command and finish the sweep (exit 0)\n"
        "  --max-failures=<n>        with --keep-going: skip remaining\n"
        "                            runs after n failures (exit 1)\n"
        "  --resume                  continue an interrupted sweep from\n"
        "                            <json>.journal.jsonl; the final JSON\n"
        "                            is byte-identical to an uninterrupted\n"
        "                            run at any --jobs value\n"
        "  --stats-json              (batch) embed a hard.stats.v1 block\n"
        "                            per run in the --json document\n"
        "  --explain                 (batch) embed a per-run divergence\n"
        "                            attribution block and a per-item\n"
        "                            aggregate in the --json document\n"
        "  --latency                 (batch) embed a per-run detection-\n"
        "                            latency block (exposure cycle +\n"
        "                            per-detector first-matching-report\n"
        "                            cycle) in the --json document\n"
        "\n"
        "campaign mode (crash-tolerant sharded sweeps; docs/campaigns.md):\n"
        "  --campaign                run the --batch sweep as a supervised\n"
        "                            multi-process campaign: shard\n"
        "                            subprocesses execute disjoint unit\n"
        "                            slices, each journaling to its own\n"
        "                            file; crashed shards are detected,\n"
        "                            their completed units salvaged, and\n"
        "                            the blamed unit retried with backoff\n"
        "                            or quarantined. The merged --json\n"
        "                            document is byte-identical to a\n"
        "                            crash-free single-process sweep.\n"
        "                            Requires --json; implies --batch\n"
        "  --shards=<n>              max concurrent shard processes (2)\n"
        "  --max-unit-retries=<n>    quarantine a unit after it crashes\n"
        "                            its shard n times (2); quarantined\n"
        "                            units are reported and exit status\n"
        "                            is 1\n"
        "  --unit-timeout=<ms>       per-unit host wall-clock budget\n"
        "                            (outcome \"timeout\"; also honored by\n"
        "                            plain --batch); 0 = off\n"
        "  --shard-timeout=<ms>      supervisor-side stall detector: kill\n"
        "                            a shard whose journal stops growing\n"
        "                            for this long; 0 = off\n"
        "  --retry-backoff-ms=<n>    base retry backoff, doubled per\n"
        "                            crash of the same unit (25)\n"
        "  --trace-cache-sweep-age=<sec> age threshold for sweeping\n"
        "                            orphaned trace-cache temp files on\n"
        "                            open (900; 0 = sweep all)\n"
        "  --inject-shard-crash=ITEM.RUN:KIND[:TIMES]\n"
        "                            crash-fault injector (tests/CI):\n"
        "                            SIGKILL the shard processing unit\n"
        "                            ITEM.RUN at KIND = pre-unit |\n"
        "                            mid-journal-write | mid-cache-store,\n"
        "                            at most TIMES times (1)\n"
        "  --monitor                 live campaign monitoring: shards\n"
        "                            heartbeat per completed unit and the\n"
        "                            supervisor publishes an atomically-\n"
        "                            renamed hard.campaign.status.v1 file\n"
        "                            (<json stem>.status.json) with\n"
        "                            progress, throughput, ETA, and retry/\n"
        "                            quarantine rates — watch it live with\n"
        "                            hardtop. Wall-clock plane only: all\n"
        "                            deterministic outputs stay identical\n"
        "\n"
        "failure detection (single runs and batch):\n"
        "  --max-cycles=<n>          cycle budget per run; 0 = unlimited\n"
        "                            for single runs, a workload-scaled\n"
        "                            default for batch runs\n"
        "  --watchdog-cycles=<n>     declare deadlock after n cycles with\n"
        "                            no retired op (default 1000000;\n"
        "                            0 = off)\n"
        "\n"
        "machine shape (defaults = paper Table 1):\n"
        "  --cores=<n>               core count (4)\n"
        "  --l1-kb=<n> --l2-kb=<n>   cache sizes (16, 1024)\n"
        "  --line-bytes=<n>          cache line size (32)\n"
        "  --mem-latency=<cycles>    memory latency (200)\n"
        "  --protocol=mesi|msi       coherence protocol (mesi)\n"
        "\n"
        "HARD shape:\n"
        "  --bloom-bits=<n>          BFVector width (16)\n"
        "  --granularity=<bytes>     monitoring granularity (32)\n"
        "  --barrier-reset=0|1       §3.5 barrier flash-reset (1)\n"
        "  --unbounded               unlimited metadata (no L2 capacity\n"
        "                            eviction)");
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        auto eat = [&](const char *flag, std::string &dst) {
            std::size_t n = std::strlen(flag);
            if (std::strncmp(a, flag, n) == 0) {
                dst = a + n;
                return true;
            }
            return false;
        };
        // Flags meaningful for a single run are replayed verbatim in
        // the repro commands batch mode reports for failed runs.
        static const char *const kSingleRunFlags[] = {
            "--scale=",       "--seed=",        "--detectors=",
            "--cores=",       "--l1-kb=",       "--l2-kb=",
            "--line-bytes=",  "--mem-latency=", "--protocol=",
            "--bloom-bits=",  "--granularity=", "--barrier-reset=",
            "--max-cycles=",  "--watchdog-cycles=",
            "--open-loop",    "--arrival-gap=", "--arrival-window=",
            "--churn-period=",
            "--sample-mode=", "--sample-rate=", "--sample-seed=",
            "--sample-period=",
            "--unbounded",    "--directory",
        };
        for (const char *flag : kSingleRunFlags) {
            std::size_t n = std::strlen(flag);
            bool match = flag[n - 1] == '='
                ? std::strncmp(a, flag, n) == 0
                : std::strcmp(a, flag) == 0;
            if (match) {
                o.reproArgs.push_back(a);
                break;
            }
        }
        std::string v;
        if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
            usage();
            std::exit(0);
        } else if (std::strcmp(a, "--list") == 0) {
            o.list = true;
        } else if (eat("--workload=", v)) {
            o.workload = v;
            o.workloadSet = true;
        } else if (std::strcmp(a, "--batch") == 0) {
            o.batch = true;
        } else if (std::strcmp(a, "--campaign") == 0) {
            o.campaign = true;
            o.batch = true;
        } else if (std::strcmp(a, "--monitor") == 0) {
            o.monitor = true;
        } else if (eat("--shards=", v)) {
            o.shards = static_cast<unsigned>(std::atoi(v.c_str()));
            hard_fatal_if(o.shards == 0, "--shards must be positive");
        } else if (eat("--max-unit-retries=", v)) {
            o.maxUnitRetries =
                static_cast<unsigned>(std::atoi(v.c_str()));
            hard_fatal_if(o.maxUnitRetries == 0,
                          "--max-unit-retries must be positive");
        } else if (eat("--unit-timeout=", v)) {
            o.unitTimeoutMs = std::strtoull(v.c_str(), nullptr, 10);
        } else if (eat("--shard-timeout=", v)) {
            o.shardTimeoutMs = std::strtoull(v.c_str(), nullptr, 10);
        } else if (eat("--retry-backoff-ms=", v)) {
            o.retryBackoffMs = std::strtoull(v.c_str(), nullptr, 10);
            hard_fatal_if(o.retryBackoffMs == 0,
                          "--retry-backoff-ms must be positive");
        } else if (eat("--trace-cache-sweep-age=", v)) {
            o.cacheSweepAgeSec = std::strtoull(v.c_str(), nullptr, 10);
        } else if (eat("--inject-shard-crash=", v)) {
            o.injectShardCrash = v;
        } else if (eat("--jobs=", v)) {
            o.jobs = static_cast<unsigned>(std::atoi(v.c_str()));
        } else if (eat("--runs=", v)) {
            o.runs = static_cast<unsigned>(std::atoi(v.c_str()));
            hard_fatal_if(o.runs == 0, "--runs must be positive");
        } else if (eat("--json=", v)) {
            o.jsonPath = v;
        } else if (std::strcmp(a, "--keep-going") == 0) {
            o.keepGoing = true;
        } else if (eat("--max-failures=", v)) {
            o.maxFailures = static_cast<unsigned>(std::atoi(v.c_str()));
        } else if (std::strcmp(a, "--resume") == 0) {
            o.resume = true;
        } else if (eat("--max-cycles=", v)) {
            o.maxCycles = std::strtoull(v.c_str(), nullptr, 10);
        } else if (eat("--watchdog-cycles=", v)) {
            o.watchdogCycles = std::strtoull(v.c_str(), nullptr, 10);
            o.watchdogSet = true;
        } else if (eat("--detectors=", v)) {
            o.detectors = v;
        } else if (eat("--record=", v)) {
            o.record = v;
        } else if (eat("--replay=", v)) {
            o.replay = v;
        } else if (eat("--scale=", v)) {
            o.scale = std::atof(v.c_str());
        } else if (eat("--seed=", v)) {
            o.seed = std::strtoull(v.c_str(), nullptr, 10);
        } else if (eat("--inject=", v)) {
            o.inject = true;
            o.injectSeed = std::strtoull(v.c_str(), nullptr, 10);
        } else if (std::strcmp(a, "--overhead") == 0) {
            o.overhead = true;
        } else if (std::strcmp(a, "--directory") == 0) {
            o.directory = true;
        } else if (std::strcmp(a, "--open-loop") == 0) {
            o.openLoop = true;
        } else if (eat("--arrival-gap=", v)) {
            o.arrivalGap = std::atof(v.c_str());
            hard_fatal_if(o.arrivalGap <= 0.0,
                          "--arrival-gap must be positive");
        } else if (eat("--arrival-window=", v)) {
            o.arrivalWindow = std::strtoull(v.c_str(), nullptr, 10);
            hard_fatal_if(o.arrivalWindow == 0,
                          "--arrival-window must be positive");
        } else if (eat("--churn-period=", v)) {
            o.churnPeriod = std::strtoull(v.c_str(), nullptr, 10);
        } else if (eat("--sample-mode=", v)) {
            o.sampleMode = v;
        } else if (eat("--sample-rate=", v)) {
            o.sampleRate = std::atof(v.c_str());
            hard_fatal_if(!(o.sampleRate > 0.0 && o.sampleRate <= 1.0),
                          "--sample-rate must be in (0, 1]");
        } else if (eat("--sample-seed=", v)) {
            o.sampleSeed = std::strtoull(v.c_str(), nullptr, 10);
        } else if (eat("--sample-period=", v)) {
            o.samplePeriod = std::strtoull(v.c_str(), nullptr, 10);
            hard_fatal_if(o.samplePeriod == 0,
                          "--sample-period must be positive");
        } else if (std::strcmp(a, "--latency") == 0) {
            o.latency = true;
        } else if (std::strcmp(a, "--frontier") == 0) {
            o.frontier = true;
        } else if (eat("--rates=", v)) {
            o.ratesCsv = v;
        } else if (std::strcmp(a, "--stats") == 0) {
            o.stats = true;
        } else if (eat("--stats-json=", v)) {
            o.statsJson = true;
            o.statsJsonPath = v;
        } else if (std::strcmp(a, "--stats-json") == 0) {
            o.statsJson = true;
        } else if (eat("--stats-interval=", v)) {
            o.statsInterval = std::strtoull(v.c_str(), nullptr, 10);
            hard_fatal_if(o.statsInterval == 0,
                          "--stats-interval must be positive");
        } else if (eat("--intervals=", v)) {
            o.intervalsPath = v;
        } else if (eat("--trace-events=", v)) {
            o.traceEvents = v;
        } else if (eat("--trace-categories=", v)) {
            o.traceCategories = v;
            o.traceCategoriesSet = true;
        } else if (eat("--explain=", v)) {
            o.explain = true;
            o.explainPath = v;
        } else if (std::strcmp(a, "--explain") == 0) {
            o.explain = true;
        } else if (eat("--profile=", v)) {
            o.profile = true;
            o.profilePath = v;
        } else if (std::strcmp(a, "--profile") == 0) {
            o.profile = true;
        } else if (eat("--mode=", v)) {
            o.modeName = v;
            o.modeSet = true;
        } else if (eat("--trace-cache=", v)) {
            o.traceCacheDir = v;
        } else if (eat("--trace-cache-stats=", v)) {
            o.traceCacheStatsPath = v;
        } else if (eat("--cores=", v)) {
            o.cores = static_cast<unsigned>(std::atoi(v.c_str()));
        } else if (eat("--l1-kb=", v)) {
            o.l1Kb = std::strtoull(v.c_str(), nullptr, 10);
        } else if (eat("--l2-kb=", v)) {
            o.l2Kb = std::strtoull(v.c_str(), nullptr, 10);
        } else if (eat("--line-bytes=", v)) {
            o.lineBytes = static_cast<unsigned>(std::atoi(v.c_str()));
        } else if (eat("--mem-latency=", v)) {
            o.memLatency = std::strtoull(v.c_str(), nullptr, 10);
        } else if (eat("--protocol=", v)) {
            o.protocol = v;
        } else if (eat("--bloom-bits=", v)) {
            o.bloomBits = static_cast<unsigned>(std::atoi(v.c_str()));
        } else if (eat("--granularity=", v)) {
            o.granularity = static_cast<unsigned>(std::atoi(v.c_str()));
        } else if (eat("--barrier-reset=", v)) {
            o.barrierReset = std::atoi(v.c_str()) != 0;
        } else if (std::strcmp(a, "--unbounded") == 0) {
            o.unbounded = true;
        } else {
            fatal("unknown argument '%s' (try --help)", a);
        }
    }
    return o;
}

SimConfig
makeSimConfig(const Options &o)
{
    SimConfig cfg;
    cfg.memsys.numCores = o.cores;
    cfg.memsys.l1.sizeBytes = o.l1Kb * 1024;
    cfg.memsys.l1.lineBytes = o.lineBytes;
    cfg.memsys.l2.sizeBytes = o.l2Kb * 1024;
    cfg.memsys.l2.lineBytes = o.lineBytes;
    cfg.memsys.memLatency = o.memLatency;
    cfg.maxCycles = o.maxCycles;
    if (o.watchdogSet)
        cfg.watchdogCycles = o.watchdogCycles;
    if (o.protocol == "msi")
        cfg.memsys.protocol = CoherenceProtocol::MSI;
    else if (o.protocol != "mesi")
        fatal("unknown protocol '%s' (mesi, msi)", o.protocol.c_str());
    if (!parseSamplingMode(o.sampleMode, cfg.sampling.mode))
        fatal("unknown sampling mode '%s' (granule, epoch)",
              o.sampleMode.c_str());
    cfg.sampling.rate = o.sampleRate;
    cfg.sampling.seed = o.sampleSeed;
    cfg.sampling.period = o.samplePeriod;
    return cfg;
}

WorkloadParams
makeWorkloadParams(const Options &o)
{
    WorkloadParams params;
    params.scale = o.scale;
    params.seed = o.seed;
    params.openLoop = o.openLoop;
    params.arrivalMeanGap = o.arrivalGap;
    params.openLoopWindow = o.arrivalWindow;
    params.churnPeriod = o.churnPeriod;
    return params;
}

HardConfig
makeHardConfig(const Options &o)
{
    HardConfig cfg;
    cfg.bloomBits = o.bloomBits;
    cfg.granularityBytes = o.granularity;
    cfg.metaGeometry.sizeBytes = o.l2Kb * 1024;
    cfg.metaGeometry.lineBytes = o.lineBytes;
    cfg.barrierReset = o.barrierReset;
    cfg.unbounded = o.unbounded;
    return cfg;
}

std::vector<std::unique_ptr<RaceDetector>>
makeDetectors(const Options &o)
{
    std::vector<std::unique_ptr<RaceDetector>> dets;
    std::stringstream ss(o.detectors);
    std::string name;
    while (std::getline(ss, name, ',')) {
        if (name.empty() || name == "none") {
            continue;
        } else if (name == "hard") {
            dets.push_back(std::make_unique<HardDetector>(
                "hard", makeHardConfig(o)));
        } else if (name == "ideal") {
            dets.push_back(std::make_unique<IdealLocksetDetector>(
                "ideal-lockset", IdealLocksetConfig{}));
        } else if (name == "hb") {
            HbConfig cfg;
            cfg.granularityBytes = o.granularity;
            cfg.metaGeometry.sizeBytes = o.l2Kb * 1024;
            cfg.metaGeometry.lineBytes = o.lineBytes;
            dets.push_back(std::make_unique<HappensBeforeDetector>(
                "happens-before", cfg));
        } else if (name == "hb-ideal") {
            dets.push_back(std::make_unique<HappensBeforeDetector>(
                "happens-before-ideal", HbConfig::ideal()));
        } else if (name == "hybrid") {
            dets.push_back(std::make_unique<HybridDetector>(
                "hybrid", makeHardConfig(o)));
        } else if (name == "fasttrack") {
            dets.push_back(
                std::make_unique<FastTrackDetector>("fasttrack", 4));
        } else {
            fatal("unknown detector '%s' (hard, ideal, hb, hb-ideal, "
                  "hybrid, fasttrack)",
                  name.c_str());
        }
    }
    return dets;
}

/**
 * --batch: fan the (workload x run x detector-set) sweep out across a
 * RunPool and print Table 2-style effectiveness rows (plus Figure
 * 8-style overhead rows with --overhead), optionally dumping the full
 * per-run results as JSON.
 */
int
runBatchMode(const Options &o, ExecMode mode, TraceCache *cache)
{
    const WorkloadParams params = makeWorkloadParams(o);

    // Workload list: explicit comma list, or every paper workload.
    std::vector<std::string> apps;
    if (o.workloadSet && o.workload != "all") {
        std::stringstream ss(o.workload);
        std::string name;
        while (std::getline(ss, name, ','))
            if (!name.empty())
                apps.push_back(name);
    } else {
        for (const WorkloadInfo &w : allWorkloads())
            apps.push_back(w.name);
    }
    hard_fatal_if(apps.empty(), "batch: no workloads selected");

    DetectorFactory factory = [o] { return makeDetectors(o); };

    // Stable column order = the factory's emission order.
    std::vector<std::string> det_names;
    for (const auto &d : factory())
        det_names.push_back(d->name());
    hard_fatal_if(det_names.empty(),
                  "batch: --detectors=none leaves nothing to measure");

    const std::uint64_t seed0 = o.inject ? o.injectSeed : o.batchSeed;

    std::vector<BatchItem> items;
    for (const std::string &app : apps) {
        BatchItem item;
        item.workload = app;
        item.wp = params;
        item.sim = makeSimConfig(o);
        item.factory = factory;
        item.runs = o.runs;
        item.seed0 = seed0;
        item.overhead = o.overhead;
        item.directory = o.directory;
        item.hardCfg = makeHardConfig(o);
        item.collectStats = o.statsJson;
        item.collectExplain = o.explain;
        item.collectLatency = o.latency;
        item.mode = mode;
        item.traceCache = cache;
        item.reproBase = "hardsim --workload=" + app;
        for (const std::string &arg : o.reproArgs)
            item.reproBase += " " + arg;
        items.push_back(std::move(item));
    }

    // Canonical description of this sweep; a journal written under a
    // different signature cannot be resumed into this one.
    std::string signature = "apps=";
    for (std::size_t i = 0; i < apps.size(); ++i)
        signature += (i ? "," : "") + apps[i];
    signature += ";runs=" + std::to_string(o.runs);
    signature += ";seed0=" + std::to_string(seed0);
    signature += ";overhead=" + std::to_string(o.overhead ? 1 : 0);
    // Stats-bearing journals can't be resumed into stats-less sweeps
    // (and vice versa): the payloads differ.
    if (o.statsJson)
        signature += ";stats=1";
    // Same rule for explain-bearing journals.
    if (o.explain)
        signature += ";explain=1";
    // And for latency-bearing journals.
    if (o.latency)
        signature += ";latency=1";
    // Fast-mode journals are unit-for-unit interchangeable with cycle
    // journals (identical payloads), but the mode is part of what the
    // sweep *was*; cycle sweeps omit the field so their signatures are
    // byte-identical to pre-fast-mode ones.
    if (mode == ExecMode::Fast)
        signature += ";mode=fast";
    // A per-unit wall budget changes what a journaled "timeout"
    // outcome meant, so sweeps with different budgets refuse to
    // resume each other.
    if (o.unitTimeoutMs != 0)
        signature += ";unit-timeout=" + std::to_string(o.unitTimeoutMs);
    for (const std::string &arg : o.reproArgs)
        signature += ";" + arg;

    hard_throw_if(o.resume && o.jsonPath.empty(), ConfigError,
                  "--resume requires --json=<file> (the journal lives "
                  "next to the JSON output)");
    std::vector<BatchItemResult> results;
    CampaignResult camp;
    if (o.campaign) {
        hard_throw_if(o.jsonPath.empty(), ConfigError,
                      "--campaign requires --json=<file> (shard "
                      "journals and the manifest live next to the JSON "
                      "output)");
        CampaignOptions copts;
        copts.shards = o.shards;
        copts.maxUnitRetries = o.maxUnitRetries;
        copts.backoffBaseMs = o.retryBackoffMs;
        copts.shardStallTimeoutMs = o.shardTimeoutMs;
        copts.outputBase = o.jsonPath;
        copts.signature = signature;
        copts.resume = o.resume;
        copts.monitor = o.monitor;
        if (!o.injectShardCrash.empty())
            copts.injectCrash = parseCrashSpec(o.injectShardCrash);
        copts.quarantinePayload = [&items](const JournalKey &key,
                                           unsigned attempts) {
            return batchQuarantinePayload(items, key, attempts);
        };
        const std::vector<JournalKey> units = batchCampaignUnits(items);
        std::printf("campaign: %zu unit(s) over up to %u shard "
                    "process(es), max %u crash(es)/unit, seed0=%llu\n\n",
                    units.size(), o.shards, o.maxUnitRetries,
                    static_cast<unsigned long long>(seed0));
        camp = runCampaign(
            units, copts,
            makeBatchShardBody(items, o.unitTimeoutMs, cache));
        // Deterministic merge: every unit is restored from the merged
        // shard journals (plus synthesized quarantined payloads), so
        // nothing re-runs here and the document written below is
        // byte-identical to a crash-free single-process sweep.
        BatchOptions merge;
        merge.keepGoing = true;
        merge.restored = &camp.entries;
        RunPool serial(1);
        results = runBatch(items, serial, merge);
    } else {
        BatchOptions bopts;
        bopts.keepGoing = o.keepGoing;
        bopts.maxFailures = o.maxFailures;
        bopts.unitTimeoutMs = o.unitTimeoutMs;
        std::unique_ptr<BatchJournal> journal;
        JournalEntries restored;
        if (!o.jsonPath.empty()) {
            const std::string jpath = journalPathFor(o.jsonPath);
            if (o.resume) {
                restored = loadJournal(jpath, signature);
                bopts.restored = &restored;
                std::printf("resuming: %zu unit(s) restored from %s\n",
                            restored.size(), jpath.c_str());
            }
            journal = std::make_unique<BatchJournal>(jpath, signature,
                                                     o.resume);
            bopts.journal = journal.get();
        }

        RunPool pool(o.jobs);
        std::printf(
            "batch: %zu workload(s) x (%u injected + 1 race-free) "
            "runs x %zu detector(s) on %u worker(s), seed0=%llu\n\n",
            apps.size(), o.runs, det_names.size(), pool.jobs(),
            static_cast<unsigned long long>(seed0));
        results = runBatch(items, pool, bopts);
    }

    Table t("Batch effectiveness (bugs detected out of attempted runs; "
            "race-free-run false alarms)");
    std::vector<std::string> header{"Application"};
    for (const std::string &d : det_names) {
        header.push_back(d + " bugs");
        header.push_back(d + " FAs");
    }
    t.setHeader(header);
    for (const BatchItemResult &res : results) {
        std::vector<std::string> row{res.label};
        for (const std::string &d : det_names) {
            // An item whose runs all failed has no score for d.
            auto it = res.effectiveness.find(d);
            if (it == res.effectiveness.end()) {
                row.push_back("-");
                row.push_back("-");
                continue;
            }
            const DetectorScore &s = it->second;
            row.push_back(std::to_string(s.bugsDetected) + "/" +
                          std::to_string(s.runsAttempted));
            row.push_back(std::to_string(s.falseAlarms));
        }
        t.addRow(row);
    }
    std::fputs(t.render().c_str(), stdout);

    if (o.overhead) {
        Table oh(std::string("Batch overhead (") +
                 (o.directory ? "directory" : "snoopy") +
                 " metadata management)");
        oh.setHeader({"Application", "Base cycles", "HARD cycles",
                      "Overhead %", "Meta bytes", "Data bytes"});
        for (const BatchItemResult &res : results) {
            if (!res.haveOverhead) {
                oh.addRow({res.label,
                           res.overheadOutcome.empty()
                               ? "-"
                               : res.overheadOutcome,
                           "-", "-", "-", "-"});
                continue;
            }
            char pct[32];
            std::snprintf(pct, sizeof(pct), "%.2f", res.overhead.overheadPct);
            oh.addRow({res.label, std::to_string(res.overhead.baseCycles),
                       std::to_string(res.overhead.hardCycles), pct,
                       std::to_string(res.overhead.metaBytes),
                       std::to_string(res.overhead.dataBytes)});
        }
        std::fputs("\n", stdout);
        std::fputs(oh.render().c_str(), stdout);
    }

    // Per-failure report with exact single-run repro commands, and
    // the exit status: failures contained by --keep-going still exit
    // 0 (the sweep itself succeeded); an aborted sweep
    // (--max-failures) exits 1.
    unsigned failed = 0, skipped = 0;
    for (const BatchItemResult &res : results) {
        for (const EffectivenessRun &run : res.runDetail) {
            if (run.outcome == "skipped") {
                ++skipped;
            } else if (!run.ok()) {
                ++failed;
                std::printf("\n%s run %u: %s (%s)\n  %s\n  repro: %s\n",
                            res.label.c_str(), run.index,
                            run.outcome.c_str(), run.errorType.c_str(),
                            run.errorMessage.c_str(),
                            reproCommand(
                                res,
                                static_cast<std::int64_t>(run.index))
                                .c_str());
            }
        }
        if (res.overheadOutcome == "skipped") {
            ++skipped;
        } else if (!res.overheadOutcome.empty() &&
                   res.overheadOutcome != "ok") {
            ++failed;
            std::printf("\n%s overhead: %s (%s)\n  %s\n  repro: %s\n",
                        res.label.c_str(), res.overheadOutcome.c_str(),
                        res.overheadErrorType.c_str(),
                        res.overheadErrorMessage.c_str(),
                        reproCommand(res, -1).c_str());
        }
    }
    if (failed != 0 || skipped != 0)
        std::printf("\nbatch: %u unit(s) failed, %u skipped\n", failed,
                    skipped);

    if (o.campaign) {
        const CampaignCounters &cc = camp.counters;
        std::printf("\ncampaign: %llu shard(s) spawned, %llu exited "
                    "ok, %llu crashed (%llu stalled), %llu unit "
                    "retry(ies), %llu restored, %llu injected "
                    "crash(es)\n",
                    static_cast<unsigned long long>(cc.shardsSpawned),
                    static_cast<unsigned long long>(cc.shardExitsOk),
                    static_cast<unsigned long long>(cc.shardCrashes),
                    static_cast<unsigned long long>(cc.shardStalls),
                    static_cast<unsigned long long>(cc.retries),
                    static_cast<unsigned long long>(cc.restored),
                    static_cast<unsigned long long>(
                        cc.injectedCrashes));
        for (const JournalKey &key : camp.quarantined) {
            const BatchItemResult &res = results[key.first];
            const std::string unit = key.second == -1
                ? std::string("overhead")
                : std::to_string(key.second);
            std::printf("campaign: QUARANTINED %s unit %s after %u "
                        "shard crash(es)\n  repro: %s\n",
                        res.label.c_str(), unit.c_str(),
                        camp.attempts.at(key),
                        reproCommand(res, key.second).c_str());
        }
        std::printf("campaign report written to %s\n",
                    campaignManifestPathFor(o.jsonPath).c_str());
    }

    if (!o.jsonPath.empty()) {
        Json doc = batchJson(results, mode);
        // Stats-collecting sweeps also carry the harness's own group;
        // stats-off dumps stay byte-identical to pre-telemetry output.
        if (o.statsJson)
            doc.set("harnessStats", harnessStatsJson(results));
        // The wall-clock profile rides along as the last top-level
        // key; without --profile the document is byte-identical to a
        // profile-less build's output.
        if (Profiler::active() != nullptr)
            doc.set("profile", Profiler::active()->toJson());
        writeJsonFile(o.jsonPath, doc);
        std::printf("\nresults written to %s\n", o.jsonPath.c_str());
    }

    if (cache != nullptr) {
        const TraceCache::Counters c = cache->counters();
        std::printf("\ntrace cache %s: %llu hit(s), %llu miss(es), "
                    "%llu store(s), %llu corrupt + %llu stale "
                    "eviction(s)\n",
                    cache->dir().c_str(),
                    static_cast<unsigned long long>(c.hits),
                    static_cast<unsigned long long>(c.misses),
                    static_cast<unsigned long long>(c.stores),
                    static_cast<unsigned long long>(c.evictedCorrupt),
                    static_cast<unsigned long long>(c.evictedStale));
    }
    if (!o.traceCacheStatsPath.empty()) {
        writeJsonFile(o.traceCacheStatsPath, cache->statsJson());
        std::printf("trace-cache stats written to %s\n",
                    o.traceCacheStatsPath.c_str());
    }
    // A campaign that had to quarantine units did not fully complete
    // the sweep — surface that in the exit status.
    if (o.campaign && !camp.quarantined.empty())
        return 1;
    return skipped != 0 ? 1 : 0;
}

/**
 * --frontier: sweep detection-sampling rates over one workload and
 * emit the overhead-vs-latency frontier (hard.frontier.v1).
 */
int
runFrontierMode(const Options &o, ExecMode mode, TraceCache *cache)
{
    FrontierOptions fo;
    fo.workload = o.workloadSet ? o.workload : "server";
    fo.wp = makeWorkloadParams(o);
    fo.sim = makeSimConfig(o);
    fo.hardCfg = makeHardConfig(o);
    if (!parseSamplingMode(o.sampleMode, fo.sampleMode))
        fatal("unknown sampling mode '%s' (granule, epoch)",
              o.sampleMode.c_str());
    fo.sampleSeed = o.sampleSeed;
    fo.samplePeriod = o.samplePeriod;
    fo.runs = o.runs;
    fo.seed0 = o.inject ? o.injectSeed : o.batchSeed;
    fo.effMode = mode;
    fo.traceCache = cache;
    fo.directory = o.directory;

    fo.rates.clear();
    std::stringstream ss(o.ratesCsv);
    std::string tok;
    while (std::getline(ss, tok, ','))
        if (!tok.empty())
            fo.rates.push_back(std::atof(tok.c_str()));

    BatchOptions bopts;
    bopts.keepGoing = o.keepGoing;
    bopts.maxFailures = o.maxFailures;
    bopts.unitTimeoutMs = o.unitTimeoutMs;

    RunPool pool(o.jobs);
    std::printf("frontier: %s, %zu rate(s), (%u injected + 1 race-free) "
                "runs + 1 overhead unit each, %s sampling, %s "
                "effectiveness legs, %u worker(s)\n\n",
                fo.workload.c_str(), fo.rates.size(), o.runs,
                samplingModeName(fo.sampleMode), execModeName(mode),
                pool.jobs());
    const Json doc = runFrontier(fo, pool, bopts);

    Table t("Overhead-vs-latency frontier (" + fo.workload + ", " +
            std::string(samplingModeName(fo.sampleMode)) + " sampling)");
    t.setHeader({"Rate", "Coverage", "Latency p50", "Latency max",
                 "Overhead %", "Bus occ %", "Reports/Mcyc"});
    for (std::size_t i = 0; i < doc["points"].size(); ++i) {
        const Json &p = doc["points"].at(i);
        // First detector of the point (frontier default: "hard").
        const auto &dets = p["detectors"].members();
        char rate[32], cov[32], ovh[32], bus[32], rpm[32];
        std::snprintf(rate, sizeof(rate), "%g", p["rate"].asDouble());
        std::string p50 = "-", max = "-";
        if (!dets.empty()) {
            const Json &d = dets.front().second;
            std::snprintf(cov, sizeof(cov), "%.2f",
                          d["coverage"].asDouble());
            const Json &lat = d["latency"];
            if (lat["samples"].asUint() > 0) {
                p50 = std::to_string(lat["p50Cycles"].asInt());
                max = std::to_string(lat["maxCycles"].asInt());
            }
        } else {
            std::snprintf(cov, sizeof(cov), "-");
        }
        if (p.has("overhead")) {
            const Json &ov = p["overhead"];
            std::snprintf(ovh, sizeof(ovh), "%.2f",
                          ov["overheadPct"].asDouble());
            std::snprintf(bus, sizeof(bus), "%.2f",
                          ov["busOccupancyPct"].asDouble());
            std::snprintf(rpm, sizeof(rpm), "%.2f",
                          ov["reportsPerMcycle"].asDouble());
        } else {
            std::snprintf(ovh, sizeof(ovh), "-");
            std::snprintf(bus, sizeof(bus), "-");
            std::snprintf(rpm, sizeof(rpm), "-");
        }
        t.addRow({rate, cov, p50, max, ovh, bus, rpm});
    }
    std::fputs(t.render().c_str(), stdout);

    if (!o.jsonPath.empty()) {
        writeJsonFile(o.jsonPath, doc);
        std::printf("\nfrontier written to %s\n", o.jsonPath.c_str());
    } else {
        std::fputs("\n", stdout);
        std::fputs(doc.dump(2).c_str(), stdout);
        std::fputs("\n", stdout);
    }
    return 0;
}

void
printReports(const std::vector<std::unique_ptr<RaceDetector>> &dets,
             const std::vector<std::string> &site_names,
             const Injection *inj, const std::set<SiteId> *true_sites)
{
    std::printf("\n%-22s %8s %12s %10s\n", "detector", "alarms",
                "dynamic", inj ? "bug found" : "");
    for (const auto &d : dets) {
        std::string found;
        if (inj != nullptr && true_sites != nullptr) {
            found = detectedInjection(d->sink(), *inj, *true_sites)
                ? "YES"
                : "no";
        }
        std::printf("%-22s %8zu %12llu %10s\n", d->name().c_str(),
                    d->sink().distinctSiteCount(),
                    static_cast<unsigned long long>(
                        d->sink().dynamicCount()),
                    found.c_str());
    }
    for (const auto &d : dets) {
        if (d->sink().sites().empty())
            continue;
        std::printf("\n%s sites:\n", d->name().c_str());
        for (SiteId s : d->sink().sites()) {
            std::printf("  %s\n",
                        s < site_names.size() ? site_names[s].c_str()
                                              : "<unknown>");
        }
    }
}

/** --explain: classify one recorded trace and emit the results. */
void
runExplain(const Options &o, const Trace &trace,
           const std::string &workload)
{
    ExplainConfig ec;
    ec.subject = ExplainConfig::Subject::Hard;
    ec.hard = makeHardConfig(o);
    ExplainResult res = [&] {
        ScopedPhase phase("run.explain");
        return explainTrace(trace, ec);
    }();
    std::fputs("\n", stdout);
    std::fputs(renderExplain(res, trace).c_str(), stdout);
    if (!o.explainPath.empty()) {
        writeJsonFile(o.explainPath, explainJson(res, trace, workload));
        std::printf("explain written to %s\n", o.explainPath.c_str());
    }
}

/**
 * Emit the wall-clock profile at process end: to --profile=FILE when
 * a path was given, otherwise (when no batch JSON already embeds it)
 * as a compact stdout summary of the top-level phases.
 */
void
emitProfile(const Options &o)
{
    Profiler *prof = Profiler::active();
    if (prof == nullptr)
        return;
    if (!o.profilePath.empty()) {
        writeJsonFile(o.profilePath, prof->toJson());
        std::printf("profile written to %s\n", o.profilePath.c_str());
        return;
    }
    if (o.batch && !o.jsonPath.empty())
        return; // already embedded in the batch document
    Json doc = prof->toJson();
    std::printf("\nprofile (%s): wall %.3f s, cpu %.3f s, peak rss "
                "%llu KB\n",
                doc["schema"].asString().c_str(),
                doc["wallSeconds"].asDouble(),
                doc["cpuSeconds"].asDouble(),
                static_cast<unsigned long long>(
                    doc["peakRssBytes"].asUint() / 1024));
    const std::function<void(const Json &, const std::string &)> walk =
        [&](const Json &node, const std::string &prefix) {
            for (const auto &[name, child] : node.members()) {
                const std::string path =
                    prefix.empty() ? name : prefix + "." + name;
                if (child.has("wallSeconds"))
                    std::printf("  %-32s %8llu call(s) %10.3f s wall\n",
                                path.c_str(),
                                static_cast<unsigned long long>(
                                    child["calls"].asUint()),
                                child["wallSeconds"].asDouble());
                if (child.has("phases"))
                    walk(child["phases"], path);
            }
        };
    walk(doc["phases"], "");
}

} // namespace

/** Body of main(); SimErrors propagate to the wrapper below. */
int
runMain(const Options &o)
{
    if (o.list) {
        for (const WorkloadInfo &w : allWorkloads())
            std::printf("%-16s %s\n", w.name, w.description);
        for (const WorkloadInfo &w : extensionWorkloads())
            std::printf("%-16s [extension] %s\n", w.name, w.description);
        for (const WorkloadInfo &w : faultWorkloads())
            std::printf("%-16s %s\n", w.name, w.description);
        return 0;
    }

    // Fast functional mode: record-once/replay-many detection. The
    // frontier defaults to fast effectiveness legs (one recording
    // shared across every sampling rate) unless --mode says otherwise.
    const ExecMode mode = (o.frontier && !o.modeSet)
        ? ExecMode::Fast
        : parseExecMode(o.modeName);
    hard_fatal_if((!o.traceCacheDir.empty() ||
                   !o.traceCacheStatsPath.empty()) &&
                      mode != ExecMode::Fast,
                  "--trace-cache/--trace-cache-stats require "
                  "--mode=fast");
    hard_fatal_if(!o.traceCacheStatsPath.empty() &&
                      o.traceCacheDir.empty(),
                  "--trace-cache-stats requires --trace-cache=DIR");
    hard_fatal_if(!o.frontier && mode == ExecMode::Fast && o.overhead,
                  "--mode=fast cannot measure overhead (Figure 8 needs "
                  "cycle-level timing; use --mode=cycle)");
    hard_fatal_if(mode == ExecMode::Fast &&
                      (!o.record.empty() || !o.replay.empty()),
                  "--mode=fast manages its own recordings; --record/"
                  "--replay are cycle-mode flags");
    hard_fatal_if(mode == ExecMode::Fast &&
                      (o.stats || o.statsJson || o.statsInterval != 0 ||
                       !o.traceEvents.empty()),
                  "--mode=fast simulates no machine on a cache hit; "
                  "machine stats and telemetry need --mode=cycle");
    std::unique_ptr<TraceCache> cache;
    if (!o.traceCacheDir.empty())
        cache = std::make_unique<TraceCache>(o.traceCacheDir,
                                             o.cacheSweepAgeSec);

    if (o.frontier) {
        hard_fatal_if(o.batch,
                      "--frontier is its own sweep driver; drop "
                      "--batch/--campaign");
        hard_fatal_if(o.resume, "--frontier does not support --resume");
        hard_fatal_if(!o.record.empty() || !o.replay.empty(),
                      "--frontier manages its own recordings; --record/"
                      "--replay are single-run flags");
        hard_fatal_if(o.overhead,
                      "--frontier always measures overhead per rate; "
                      "drop --overhead");
        return runFrontierMode(o, mode, cache.get());
    }
    hard_fatal_if(o.latency && !o.batch,
                  "--latency is a batch-mode flag (frontier mode "
                  "collects it implicitly)");

    if (o.batch) {
        hard_fatal_if(o.statsInterval != 0 || !o.traceEvents.empty() ||
                          !o.intervalsPath.empty(),
                      "batch mode supports --stats-json only (interval "
                      "sampling and event tracing are single-run)");
        hard_fatal_if(o.statsJson && !o.statsJsonPath.empty(),
                      "batch --stats-json takes no =FILE (stats embed in "
                      "the --json document)");
        hard_fatal_if(o.explain && !o.explainPath.empty(),
                      "batch --explain takes no =FILE (attribution "
                      "embeds in the --json document)");
        return runBatchMode(o, mode, cache.get());
    }

    // Single-run telemetry: validate the flag combinations up front.
    hard_fatal_if(o.statsJson && o.statsJsonPath.empty(),
                  "single-run --stats-json requires =FILE");
    hard_fatal_if(o.traceCategoriesSet && o.traceEvents.empty(),
                  "--trace-categories requires --trace-events=FILE");
    hard_fatal_if(o.statsInterval != 0 && o.intervalsPath.empty() &&
                      o.statsJsonPath.empty(),
                  "--stats-interval needs an output path: give "
                  "--intervals=FILE or --stats-json=FILE (the time "
                  "series lands next to it)");
    const bool telemetry = o.statsJson || o.statsInterval != 0 ||
        !o.traceEvents.empty();
    hard_fatal_if(telemetry && !o.replay.empty(),
                  "trace replay drives detectors without a System; "
                  "telemetry flags are not supported with --replay");
    hard_fatal_if(telemetry && o.overhead,
                  "telemetry flags are not supported with --overhead "
                  "(use --batch --overhead --stats-json --json=FILE "
                  "for overhead stats)");
    hard_fatal_if(o.explain && o.overhead,
                  "--explain is not supported with --overhead (it "
                  "analyzes a recorded detector run)");

    const WorkloadParams params = makeWorkloadParams(o);

    if (o.overhead) {
        SimConfig sim = makeSimConfig(o);
        OverheadResult oh = o.directory
            ? measureOverheadDirectory(o.workload, params, sim,
                                       makeHardConfig(o))
            : measureOverhead(o.workload, params, sim,
                              makeHardConfig(o));
        std::printf("%s (%s metadata management): baseline %llu "
                    "cycles, HARD %llu cycles -> %.2f%% overhead\n"
                    "broadcasts/round-trips %llu, metadata %llu B, "
                    "data %llu B\n",
                    o.workload.c_str(),
                    o.directory ? "directory" : "snoopy",
                    static_cast<unsigned long long>(oh.baseCycles),
                    static_cast<unsigned long long>(oh.hardCycles),
                    oh.overheadPct,
                    static_cast<unsigned long long>(oh.metaBroadcasts),
                    static_cast<unsigned long long>(oh.metaBytes),
                    static_cast<unsigned long long>(oh.dataBytes));
        return 0;
    }

    auto dets = makeDetectors(o);
    std::vector<AccessObserver *> observers;
    for (auto &d : dets)
        observers.push_back(d.get());

    // Detection sampling wraps each detector in the deterministic
    // duty-cycle schedule; rate 1.0 attaches the raw detectors, so
    // unsampled runs are byte-identical to pre-sampling builds.
    const SamplingSpec sampling = makeSimConfig(o).sampling;
    std::vector<std::unique_ptr<SamplingObserver>> sampled;
    if (sampling.active()) {
        for (AccessObserver *&obs : observers) {
            sampled.push_back(
                std::make_unique<SamplingObserver>(*obs, sampling));
            obs = sampled.back().get();
        }
    }

    if (!o.replay.empty()) {
        Trace trace = readTrace(o.replay);
        std::printf("replaying %s: %zu events, %u threads\n",
                    o.replay.c_str(), trace.events.size(),
                    trace.threadCount());
        {
            ScopedPhase phase("run.replay");
            replayTrace(trace, observers);
        }
        printReports(dets, trace.siteNames, nullptr, nullptr);
        if (o.explain)
            runExplain(o, trace, "");
        return 0;
    }

    Program prog = buildWorkload(o.workload, params);
    Injection inj;
    std::set<SiteId> true_sites;
    if (o.inject) {
        SharedMap shared(buildWorkload(o.workload, params));
        inj = injectRace(prog, o.injectSeed, &shared);
        hard_fatal_if(!inj.valid, "no injectable critical section");
        true_sites = sitesTouching(prog, inj);
        std::printf("injected race: elided dynamic lock/unlock pair "
                    "#%zu (lock %llx, thread %u)\n",
                    inj.dynamicIndex,
                    static_cast<unsigned long long>(inj.lock), inj.tid);
    }

    if (mode == ExecMode::Fast) {
        // Record once (or fetch the recording) and drive the
        // detectors from the trace alone; reports are bit-identical
        // to the cycle-mode run below.
        const SimConfig cfg = makeSimConfig(o);
        const TraceKey key = makeRunKey(
            o.workload, params, cfg,
            o.inject ? static_cast<std::int64_t>(o.injectSeed) : -1);
        Trace trace;
        bool hit = false;
        if (cache) {
            std::optional<Trace> cached = cache->lookup(key);
            if (cached) {
                trace = std::move(*cached);
                hit = true;
            }
        }
        if (!hit) {
            {
                ScopedPhase phase("run.record");
                trace = recordRun(prog, cfg);
            }
            if (cache)
                cache->store(key, trace);
        }
        std::printf("%s: fast mode (%s): %zu events, %u threads\n",
                    prog.name.c_str(),
                    hit ? "cache hit" : "recorded", trace.events.size(),
                    trace.threadCount());
        {
            ScopedPhase phase("run.replay");
            replayTrace(trace, observers);
        }
        printReports(dets, trace.siteNames, o.inject ? &inj : nullptr,
                     o.inject ? &true_sites : nullptr);
        if (o.explain)
            runExplain(o, trace, prog.name);
        if (!o.traceCacheStatsPath.empty()) {
            writeJsonFile(o.traceCacheStatsPath, cache->statsJson());
            std::printf("trace-cache stats written to %s\n",
                        o.traceCacheStatsPath.c_str());
        }
        return 0;
    }

    System sys(makeSimConfig(o), prog);

    // Telemetry attaches before the detectors so their probes and
    // trace hooks register as each observer is added.
    std::unique_ptr<EventTracer> tracer;
    if (!o.traceEvents.empty()) {
        tracer = std::make_unique<EventTracer>(
            o.traceEvents, parseTraceCategories(o.traceCategories));
        sys.setTracer(tracer.get());
    }
    std::unique_ptr<IntervalSampler> sampler;
    std::string intervals_path;
    if (o.statsInterval != 0) {
        intervals_path = o.intervalsPath.empty()
            ? intervalsPathFor(o.statsJsonPath)
            : o.intervalsPath;
        sampler = std::make_unique<IntervalSampler>(intervals_path,
                                                    o.statsInterval);
        sys.setSampler(sampler.get());
    }

    std::unique_ptr<TraceRecorder> recorder;
    if (!o.record.empty() || o.explain) {
        recorder = std::make_unique<TraceRecorder>(prog);
        sys.addObserver(recorder.get());
    }
    for (AccessObserver *obs : observers)
        sys.addObserver(obs);

    RunResult res = [&] {
        ScopedPhase phase("run.simulate");
        return sys.run();
    }();
    std::printf("%s: %llu cycles, %llu reads, %llu writes, %llu lock "
                "acquires, %llu barrier episodes\n",
                prog.name.c_str(),
                static_cast<unsigned long long>(res.totalCycles),
                static_cast<unsigned long long>(res.dataReads),
                static_cast<unsigned long long>(res.dataWrites),
                static_cast<unsigned long long>(res.lockAcquires),
                static_cast<unsigned long long>(res.barrierEpisodes));

    Trace trace;
    if (recorder)
        trace = recorder->take();
    if (!o.record.empty()) {
        writeTrace(o.record, trace);
        std::printf("trace written to %s\n", o.record.c_str());
    }

    std::vector<std::string> site_names;
    for (SiteId s = 0; s < prog.sites.size(); ++s)
        site_names.push_back(prog.sites.name(s));
    printReports(dets, site_names, o.inject ? &inj : nullptr,
                 o.inject ? &true_sites : nullptr);

    if (o.explain)
        runExplain(o, trace, prog.name);

    if (o.stats) {
        std::printf("\nmachine statistics:\n");
        for (const auto &[name, value] : sys.statsDump())
            std::printf("  %-28s %llu\n", name.c_str(),
                        static_cast<unsigned long long>(value));
    }

    if (o.statsJson) {
        writeJsonFile(o.statsJsonPath, sys.statsJson());
        std::printf("stats written to %s\n", o.statsJsonPath.c_str());
    }
    if (sampler)
        std::printf("interval samples written to %s\n",
                    intervals_path.c_str());
    if (tracer) {
        tracer->write();
        std::printf("%zu trace events written to %s\n", tracer->size(),
                    o.traceEvents.c_str());
    }
    return 0;
}

int
main(int argc, char **argv)
{
    try {
        Options o = parse(argc, argv);
        hard_fatal_if(o.monitor && !o.campaign,
                      "--monitor requires --campaign (it reads shard "
                      "heartbeats)");
        // Enable before any work so every phase lands in the profile.
        // Profiling lives on the wall-clock plane: deterministic
        // outputs are byte-identical with or without it.
        if (o.profile)
            Profiler::enable();
        const int rc = runMain(o);
        emitProfile(o);
        return rc;
    } catch (const SimError &e) {
        std::fprintf(stderr, "hardsim: %s: %s\n", e.typeName(), e.what());
        return 1;
    }
}
