/**
 * @file
 * Post-mortem analysis demo (the §6 "post-mortem" detector family):
 * record a buggy run once, then analyze the trace offline — with a
 * detector that was not even attached while the program ran.
 *
 * Usage: postmortem [workload] [--scale=<f>] [--seed=<n>]
 */

#include <cstdio>
#include <cstring>

#include "harness/experiment.hh"
#include "trace/recorder.hh"
#include "trace/replayer.hh"

using namespace hard;

int
main(int argc, char **argv)
{
    std::string workload = "raytrace";
    double scale = 0.3;
    std::uint64_t seed = 7;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strncmp(a, "--scale=", 8) == 0)
            scale = std::atof(a + 8);
        else if (std::strncmp(a, "--seed=", 7) == 0)
            seed = static_cast<std::uint64_t>(std::atoll(a + 7));
        else if (a[0] != '-')
            workload = a;
        else
            fatal("unknown argument '%s'", a);
    }

    WorkloadParams params;
    params.scale = scale;

    // 1. The "production run": inject a bug, record the trace. No
    // detector is attached — only the lightweight recorder.
    Program prog = buildWorkload(workload, params);
    SharedMap shared(buildWorkload(workload, params));
    Injection inj = injectRace(prog, seed, &shared);
    hard_fatal_if(!inj.valid, "no injectable critical section");

    TraceRecorder recorder(prog);
    System sys(defaultSimConfig(), prog);
    sys.addObserver(&recorder);
    RunResult res = sys.run();

    const std::string path = "/tmp/hard_postmortem.trc";
    writeTrace(path, recorder.take());
    std::printf("recorded %s (%llu cycles) with an injected race "
                "(elided lock %llx in thread %u)\n"
                "trace written to %s\n\n",
                workload.c_str(),
                static_cast<unsigned long long>(res.totalCycles),
                static_cast<unsigned long long>(inj.lock), inj.tid,
                path.c_str());

    // 2. Later, offline: load the trace and run the full detector
    // suite over it.
    Trace trace = readTrace(path);
    std::printf("loaded trace: %zu events, %u threads, %zu sites\n",
                trace.events.size(), trace.threadCount(),
                trace.siteNames.size());

    HardDetector hard("HARD", HardConfig{});
    IdealLocksetDetector ideal("ideal-lockset", IdealLocksetConfig{});
    HappensBeforeDetector hb("happens-before", HbConfig::ideal());
    replayTrace(trace, {&hard, &ideal, &hb});

    std::set<SiteId> true_sites = sitesTouching(prog, inj);
    std::printf("\n%-16s %8s %11s\n", "detector", "alarms", "bug found");
    for (RaceDetector *d :
         std::vector<RaceDetector *>{&hard, &ideal, &hb}) {
        std::printf("%-16s %8zu %11s\n", d->name().c_str(),
                    d->sink().distinctSiteCount(),
                    detectedInjection(d->sink(), inj, true_sites)
                        ? "YES"
                        : "no");
    }
    std::printf("\nracy sites (HARD, offline):\n");
    for (SiteId s : hard.sink().sites()) {
        std::printf("  %s\n",
                    s < trace.siteNames.size()
                        ? trace.siteNames[s].c_str()
                        : "<unknown>");
    }
    return 0;
}
