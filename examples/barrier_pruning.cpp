/**
 * @file
 * Reproduces the paper's Figure 7: a barrier-ordered hand-off that is
 * race-free but violates the naive locking discipline, and the §3.5
 * barrier flash-reset that prunes the false alarm.
 *
 *   Thread 1: reads/writes A[0..7];   barrier;
 *   Thread 2:                         barrier;  reads/writes A[0..7]
 *
 * Without the reset, lockset reports races on A (no common lock ever
 * protects it); with the reset, the pre-barrier access history is
 * discarded and the program is silent.
 */

#include <cstdio>

#include "core/hard_detector.hh"
#include "sim/system.hh"
#include "workloads/builder.hh"

using namespace hard;

namespace
{

Program
buildFigure7()
{
    WorkloadBuilder b("figure7", 2);
    const Addr array_a = b.alloc("A", 8 * 8, 32);
    const Addr bar = b.allocBarrier("bar");
    const SiteId s1 = b.site("thread1.pre.rw");
    const SiteId s2 = b.site("thread2.post.rw");
    const SiteId sb = b.site("barrier");

    for (unsigned i = 0; i < 8; ++i) {
        b.read(0, array_a + i * 8, 8, s1);
        b.write(0, array_a + i * 8, 8, s1);
    }
    b.barrierAll(bar, sb);
    for (unsigned i = 0; i < 8; ++i) {
        b.read(1, array_a + i * 8, 8, s2);
        b.write(1, array_a + i * 8, 8, s2);
    }
    return b.finish();
}

std::size_t
alarmsWithReset(bool reset)
{
    Program prog = buildFigure7();
    HardConfig cfg;
    cfg.barrierReset = reset;
    System sys(SimConfig{}, prog);
    HardDetector hard("HARD", cfg);
    sys.addObserver(&hard);
    sys.run();
    return hard.sink().distinctSiteCount();
}

} // namespace

int
main()
{
    std::size_t with = alarmsWithReset(true);
    std::size_t without = alarmsWithReset(false);
    std::printf("Figure 7 barrier hand-off over array A:\n"
                "  HARD with the Section 3.5 barrier reset : %zu "
                "alarms\n"
                "  HARD without the reset                  : %zu "
                "alarms\n\n",
                with, without);
    bool ok = with == 0 && without > 0;
    std::printf("%s: the flash reset prunes the barrier-induced false "
                "positive.\n",
                ok ? "REPRODUCED" : "UNEXPECTED");
    return ok ? 0 : 1;
}
