/**
 * @file
 * Quickstart: build a tiny two-thread program with a missing lock,
 * run it on the simulated CMP with the HARD detector attached, and
 * print the races it reports.
 *
 * Thread 0 updates a shared counter under the lock; thread 1 "forgets"
 * the lock for the same update — the bug class the paper injects.
 */

#include <cstdio>

#include "core/hard_detector.hh"
#include "harness/experiment.hh"
#include "sim/system.hh"
#include "workloads/builder.hh"

using namespace hard;

int
main()
{
    // 1. Author a tiny workload: two threads, one shared counter.
    WorkloadBuilder b("quickstart", 2);
    const Addr counter = b.alloc("counter", 8);
    const LockAddr lock = b.allocLock("counterLock");
    const SiteId s_lock = b.site("update.lock");
    const SiteId s_read = b.site("update.read");
    const SiteId s_write = b.site("update.write");

    for (int i = 0; i < 4; ++i) {
        // Thread 0: disciplined.
        b.lock(0, lock, s_lock);
        b.read(0, counter, 8, s_read);
        b.write(0, counter, 8, s_write);
        b.unlock(0, lock, s_lock);
        b.compute(0, 500);

        // Thread 1: forgot the lock (the injected-race bug class).
        b.read(1, counter, 8, s_read);
        b.write(1, counter, 8, s_write);
        b.compute(1, 500);
    }
    Program prog = b.finish();

    // 2. Run it on the simulated 4-core CMP with HARD attached.
    SimConfig sim = defaultSimConfig();
    System system(sim, prog);
    HardDetector hard("hard", HardConfig{});
    system.addObserver(&hard);
    RunResult res = system.run();

    // 3. Inspect the reports.
    std::printf("simulated %llu cycles, %llu reads, %llu writes\n",
                static_cast<unsigned long long>(res.totalCycles),
                static_cast<unsigned long long>(res.dataReads),
                static_cast<unsigned long long>(res.dataWrites));
    std::printf("HARD reported %zu distinct racy sites:\n",
                hard.sink().distinctSiteCount());
    for (SiteId s : hard.sink().sites())
        std::printf("  race at %s\n", prog.sites.name(s).c_str());

    return hard.sink().distinctSiteCount() > 0 ? 0 : 1;
}
