/**
 * @file
 * Run one of the six SPLASH-2-like workloads on the simulated CMP
 * with every detector attached, optionally injecting a race — a
 * command-line driver over the full public API.
 *
 * Usage: splash_run [workload] [--inject=<seed>] [--scale=<f>]
 *        splash_run --list
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "harness/experiment.hh"

using namespace hard;

int
main(int argc, char **argv)
{
    std::string workload = "water-nsquared";
    double scale = 0.5;
    bool inject = false;
    std::uint64_t inject_seed = 1;

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--list") == 0) {
            for (const WorkloadInfo &w : allWorkloads())
                std::printf("%-16s %s\n", w.name, w.description);
            return 0;
        } else if (std::strncmp(a, "--inject=", 9) == 0) {
            inject = true;
            inject_seed = static_cast<std::uint64_t>(std::atoll(a + 9));
        } else if (std::strncmp(a, "--scale=", 8) == 0) {
            scale = std::atof(a + 8);
        } else if (a[0] != '-') {
            workload = a;
        } else {
            fatal("unknown argument '%s'", a);
        }
    }

    WorkloadParams params;
    params.scale = scale;
    Program prog = buildWorkload(workload, params);
    std::printf("workload %s: %zu threads, %zu ops, %zu locks, "
                "footprint %llu KB\n",
                prog.name.c_str(), prog.threads.size(), prog.totalOps(),
                prog.locks.size(),
                static_cast<unsigned long long>(
                    (prog.dataLimit - prog.dataBase) / 1024));

    Injection inj;
    if (inject) {
        SharedMap shared(buildWorkload(workload, params));
        inj = injectRace(prog, inject_seed, &shared);
        if (inj.valid) {
            std::printf("injected race: elided dynamic lock/unlock pair "
                        "#%zu (lock %llx, thread %u), critical section "
                        "touches %zu ranges\n",
                        inj.dynamicIndex,
                        static_cast<unsigned long long>(inj.lock),
                        inj.tid, inj.ranges.size());
        } else {
            std::printf("injection failed: no eligible critical "
                        "section\n");
        }
    }

    System sys(defaultSimConfig(), prog);
    HardDetector hard("HARD", HardConfig{});
    IdealLocksetDetector ideal("ideal-lockset", IdealLocksetConfig{});
    HappensBeforeDetector hb("happens-before", HbConfig{});
    HappensBeforeDetector hbi("happens-before-ideal", HbConfig::ideal());
    for (RaceDetector *d :
         std::vector<RaceDetector *>{&hard, &ideal, &hb, &hbi})
        sys.addObserver(d);

    RunResult res = sys.run();
    std::printf("\nsimulated %llu cycles; %llu reads, %llu writes, "
                "%llu lock acquires, %llu barrier episodes\n",
                static_cast<unsigned long long>(res.totalCycles),
                static_cast<unsigned long long>(res.dataReads),
                static_cast<unsigned long long>(res.dataWrites),
                static_cast<unsigned long long>(res.lockAcquires),
                static_cast<unsigned long long>(res.barrierEpisodes));
    std::printf("bus: %llu data bytes, %llu HARD metadata broadcasts\n",
                static_cast<unsigned long long>(
                    sys.memsys().bus().stats().value("dataBytes")),
                static_cast<unsigned long long>(
                    hard.hardStats().metaBroadcasts));

    std::printf("\n%-22s %10s %14s %9s\n", "detector", "alarms",
                "dynamic", inject ? "bug found" : "");
    for (RaceDetector *d :
         std::vector<RaceDetector *>{&hard, &ideal, &hb, &hbi}) {
        std::string found;
        if (inject && inj.valid) {
            found = detectedInjection(d->sink(), inj,
                                      sitesTouching(prog, inj))
                ? "YES"
                : "no";
        }
        std::printf("%-22s %10zu %14llu %9s\n", d->name().c_str(),
                    d->sink().distinctSiteCount(),
                    static_cast<unsigned long long>(
                        d->sink().dynamicCount()),
                    found.c_str());
    }

    if (!inject) {
        std::printf("\nalarm sites (HARD):\n");
        for (SiteId s : hard.sink().sites())
            std::printf("  %s\n", prog.sites.name(s).c_str());
    }
    return 0;
}
