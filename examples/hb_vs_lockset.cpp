/**
 * @file
 * Reproduces the paper's Figure 1: an execution interleaving in which
 * the happens-before algorithm cannot detect the data race on x while
 * the lockset algorithm (and HARD) can.
 *
 *   Thread 1:  x = 1;  lock(L); y++; unlock(L);
 *   Thread 2:  (later) lock(L); y++; unlock(L);  x = 2;
 *
 * In this interleaving thread 2's unprotected x access is transitively
 * ordered after thread 1's through L's release->acquire edge, so
 * happens-before sees no race; the locking-discipline violation on x
 * is interleaving-independent, so lockset flags it.
 */

#include <cstdio>

#include "core/hard_detector.hh"
#include "detectors/happens_before.hh"
#include "detectors/ideal_lockset.hh"
#include "sim/system.hh"
#include "workloads/builder.hh"

using namespace hard;

int
main()
{
    WorkloadBuilder b("figure1", 2);
    const Addr x = b.alloc("x", 8, 32);
    const Addr y = b.alloc("y", 8, 32);
    const LockAddr l = b.allocLock("L");
    const SiteId sx1 = b.site("thread1.x.write");
    const SiteId sy = b.site("y.critical.section");
    const SiteId sx2 = b.site("thread2.x.write");

    // Thread 1 (tid 0).
    b.write(0, x, 8, sx1);
    b.lock(0, l, sy);
    b.read(0, y, 8, sy);
    b.write(0, y, 8, sy);
    b.unlock(0, l, sy);

    // Thread 2 (tid 1) runs after thread 1 in this interleaving.
    b.compute(1, 10000);
    b.lock(1, l, sy);
    b.read(1, y, 8, sy);
    b.write(1, y, 8, sy);
    b.unlock(1, l, sy);
    b.write(1, x, 8, sx2);

    Program prog = b.finish();

    System sys(SimConfig{}, prog);
    HappensBeforeDetector hb("happens-before", HbConfig::ideal());
    IdealLocksetDetector lockset("lockset", IdealLocksetConfig{});
    HardDetector hard("HARD", HardConfig{});
    sys.addObserver(&hb);
    sys.addObserver(&lockset);
    sys.addObserver(&hard);
    sys.run();

    auto show = [&](const RaceDetector &d) {
        std::printf("%-14s: %zu race(s)", d.name().c_str(),
                    d.sink().distinctSiteCount());
        for (SiteId s : d.sink().sites())
            std::printf("  [%s]", prog.sites.name(s).c_str());
        std::printf("\n");
    };
    std::printf("Figure 1 interleaving — race on x, ordered through "
                "lock L:\n");
    show(hb);
    show(lockset);
    show(hard);

    bool ok = hb.sink().distinctSiteCount() == 0 &&
        lockset.sink().distinctSiteCount() > 0 &&
        hard.sink().distinctSiteCount() > 0;
    std::printf("\n%s: happens-before misses the race; lockset and "
                "HARD catch it.\n",
                ok ? "REPRODUCED" : "UNEXPECTED");
    return ok ? 0 : 1;
}
