/**
 * @file
 * Reproduces the paper's Figure 5: a Bloom-filter-induced false
 * negative. The candidate set is C(v) = {L1, L2}; the accessing
 * thread holds {L3}. The true intersection is empty (a race), but L3
 * collides with L1/L2 in every part of the 16-bit BFVector, so the
 * hardware sees a non-empty vector and hides the race. The example
 * also shows the same addresses under the 32-bit vector and the §3.2
 * probability of such collisions.
 */

#include <cstdio>

#include "core/bloom.hh"

using namespace hard;

namespace
{

/** Build a lock address with the given four 2-bit part indices. */
Addr
lockWithIndices(unsigned i0, unsigned i1, unsigned i2, unsigned i3)
{
    return (Addr{i0} << 2) | (Addr{i1} << 4) | (Addr{i2} << 6) |
        (Addr{i3} << 8);
}

} // namespace

int
main()
{
    // L3's per-part indices collide alternately with L1's and L2's.
    const Addr l1 = lockWithIndices(0, 0, 0, 0) | 0x400000;
    const Addr l2 = lockWithIndices(1, 1, 1, 1) | 0x400000;
    const Addr l3 = lockWithIndices(0, 1, 0, 1) | 0x400000;

    BfVector cand(16);
    cand |= BfVector::signatureOf(l1, 16);
    cand |= BfVector::signatureOf(l2, 16);
    BfVector lockset = BfVector::signatureOf(l3, 16);

    std::printf("Figure 5 — a false negative caused by the Bloom "
                "filter (16-bit BFVector, 4 parts):\n\n");
    std::printf("  C(v) = {L1, L2}     -> %s\n",
                cand.toString().c_str());
    std::printf("  L(t) = {L3}         -> %s\n",
                lockset.toString().c_str());

    BfVector inter = cand;
    inter &= lockset;
    std::printf("  C(v) AND L(t)       -> %s   (setEmpty: %s)\n\n",
                inter.toString().c_str(),
                inter.setEmpty() ? "yes" : "NO");
    std::printf("  The true intersection {L1,L2} n {L3} is empty — a "
                "race — but every part of the\n  vector keeps a bit, "
                "so the 16-bit hardware would miss it.\n\n");

    // The same three locks under a 32-bit vector: the wider parts
    // separate the indices, exposing the empty set.
    BfVector cand32(32);
    cand32 |= BfVector::signatureOf(l1, 32);
    cand32 |= BfVector::signatureOf(l2, 32);
    BfVector inter32 = cand32;
    inter32 &= BfVector::signatureOf(l3, 32);
    std::printf("  With a 32-bit BFVector the same intersection is "
                "empty: %s\n\n",
                inter32.setEmpty() ? "yes (race exposed)" : "no");

    std::printf("  Section 3.2 collision probabilities (16-bit, part "
                "length 4):\n");
    for (unsigned m = 1; m <= 3; ++m) {
        std::printf("    |C(v)| = %u  ->  CR_whole = %.4f\n", m,
                    bloomMissProbability(4, m));
    }
    std::printf("\n  Candidate sets in real programs are tiny (the "
                "paper measures max size 1-3),\n  so the 16-bit "
                "vector loses almost nothing — see bench_table6.\n");
    return inter.setEmpty() ? 1 : 0;
}
